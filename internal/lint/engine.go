package lint

// The interprocedural dataflow engine (ISSUE 9). The intra-function
// analyzers built so far (nondet, specleak, laneconsistency) are pattern
// matchers: they flag a raw time.Now *at the call site* but cannot see the
// same value returned from a helper two hops away and fed to the seq wire.
// This engine closes that gap with classic bottom-up summary computation:
//
//  1. A call graph is built over every package the loader type-checked
//     from source, with edges resolved through go/types (package
//     functions, methods, and locally-bound closures). Cross-package
//     callees are keyed by a stable "pkgpath.Recv.Name" string because a
//     package loaded from source and the same package seen through gc
//     export data produce distinct types.Func objects.
//
//  2. Strongly connected components (Tarjan) order the graph so callee
//     summaries exist before callers need them; members of one SCC
//     iterate together to a fixpoint.
//
//  3. Each function body is analyzed flow-insensitively to its own
//     fixpoint: taint propagates through assignments, composite
//     literals, returns, parameters, struct fields, package-level
//     variables, and closure bodies (closures are analyzed inline against
//     the enclosing function's environment, so captured variables flow
//     both ways). The result is a summary: which results carry source
//     taint unconditionally, which parameters flow to which results, and
//     which parameters flow into a determinism sink inside the function
//     or its callees.
//
//  4. A final reporting pass re-runs the intra-function analysis with
//     every summary in place and emits a finding wherever real source
//     taint reaches a sink, carrying the full laundering chain
//     (source function → helpers → sink) in the message.
//
// Struct fields and package-level variables are tracked engine-wide by a
// name key (over-approximate across same-named fields of one package, and
// only real source taint — not parameter taint — enters the global set);
// the summary phase repeats until that set stabilizes.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Sources and sinks
// ---------------------------------------------------------------------------

// Source kinds, shared with the nondet analyzer: both tools must agree on
// what counts as nondeterminism, nondet flags the construct at its use
// site in replicated packages, detflow follows the value.
const (
	kindTime      = "time.Now"
	kindRand      = "math/rand"
	kindEnv       = "os.Getenv"
	kindMapOrder  = "map iteration order"
	kindSelect    = "select arm order"
	kindPtrFormat = "pointer formatting"
	kindMapHash   = "unseeded maphash"
)

// sourceFuncs maps a function key (see funcID) to its source kind.
// Functions whose whole package is a source (math/rand, hash/maphash) are
// matched by sourcePkgs instead.
var sourceFuncs = map[string]string{
	"time.Now":     kindTime,
	"time.Since":   kindTime,
	"time.Until":   kindTime,
	"os.Getenv":    kindEnv,
	"os.LookupEnv": kindEnv,
	"os.Environ":   kindEnv,
}

// sourcePkgs taints every call into the package.
var sourcePkgs = map[string]string{
	"math/rand":    kindRand,
	"math/rand/v2": kindRand,
	"hash/maphash": kindMapHash,
}

// sinkSpec describes one determinism sink: the label findings carry, and
// whether the receiver itself is payload. For almost every sink only the
// explicit arguments cross the boundary — a *Sequence with a tainted
// stats field does not make Enqueue nondeterministic — but for
// Entry.Encode the receiver IS the payload.
type sinkSpec struct {
	label string
	recv  bool
}

// sinkFuncs maps function keys to their sink spec. These are the
// determinism boundary of the system: a nondeterministic value crossing
// any of them reaches the consensus wire, the schedule, the durable log,
// or a client — and breaks the bit-identical-replicas guarantee.
var sinkFuncs = map[string]sinkSpec{
	// seq wire: what gets proposed must be identical on every replica.
	"crane/internal/seq.Entry.Encode":         {"seq.Entry.Encode", true},
	"crane/internal/seq.EncodeBatch":          {"seq.EncodeBatch", false},
	"crane/internal/seq.Sequence.Enqueue":     {"seq.Sequence.Enqueue", false},
	"crane/internal/seq.Sequence.EnqueueSpec": {"seq.Sequence.EnqueueSpec", false},
	// DMT schedule: spawn names and wait/signal keys fold into the
	// deterministic schedule hash.
	"crane/internal/dmt.Scheduler.Spawn":  {"dmt.Scheduler.Spawn", false},
	"crane/internal/dmt.Thread.WaitOn":    {"dmt.Thread.WaitOn", false},
	"crane/internal/dmt.Thread.SignalKey": {"dmt.Thread.SignalKey", false},
	"crane/internal/papi.T.Spawn":         {"papi.T.Spawn", false},
	"crane/internal/papi.T.SpawnLane":     {"papi.T.SpawnLane", false},
	// Client-visible output: the speculation gate and the app socket layer.
	"crane/internal/crane.Replica.emitOutput": {"crane.Replica.emitOutput", false},
	"crane/internal/crane.speculator.emit":    {"crane.speculator.emit", false},
	"crane/internal/papi.Conn.Send":           {"papi.Conn.Send", false},
	// Durability and the cross-replica output fingerprint.
	"crane/internal/wal.Log.Append":         {"wal.Log.Append", false},
	"crane/internal/wal.Log.AppendBatch":    {"wal.Log.AppendBatch", false},
	"crane/internal/trace.OutputLog.Record": {"trace.OutputLog.Record", false},
}

// funcID builds the stable cross-package identity of a function:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for methods
// (pointer receivers and interface methods included).
func funcID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name() + "."
		}
	}
	return fn.Pkg().Path() + "." + recv + fn.Name()
}

// shortName is the human form used in chain messages: "pkg.Func" or
// "pkg.Recv.Func" with the package's base name.
func shortName(fn *types.Func) string {
	key := funcID(fn)
	if fn.Pkg() != nil {
		if i := strings.LastIndex(fn.Pkg().Path(), "/"); i >= 0 {
			return key[i+1:]
		}
	}
	return key
}

// ---------------------------------------------------------------------------
// Taint lattice
// ---------------------------------------------------------------------------

// witness is one way a value became tainted: the source kind, where the
// source fired, and the chain of functions the value was laundered
// through. Parameter taint (kind "param:<i>") is the synthetic seed used
// to compute summaries.
type witness struct {
	kind  string
	pos   token.Pos
	fset  *token.FileSet
	chain []string
}

func (w witness) withChain(links ...string) witness {
	if len(links) == 0 {
		return w
	}
	chain := make([]string, 0, len(w.chain)+len(links))
	chain = append(chain, w.chain...)
	for _, l := range links {
		if len(chain) == 0 || chain[len(chain)-1] != l {
			chain = append(chain, l)
		}
	}
	w.chain = chain
	return w
}

func paramKind(i int) string { return "param:" + strconv.Itoa(i) }

func paramIndex(kind string) (int, bool) {
	if !strings.HasPrefix(kind, "param:") {
		return 0, false
	}
	i, err := strconv.Atoi(kind[len("param:"):])
	return i, err == nil
}

// wset is a taint set: at most one witness per kind (the first seen — the
// shortest chain, since propagation is breadth-first-ish and monotone).
type wset map[string]witness

func (s wset) add(w witness) bool {
	if _, ok := s[w.kind]; ok {
		return false
	}
	s[w.kind] = w
	return true
}

func (s wset) union(o wset) bool {
	changed := false
	for _, w := range o {
		if s.add(w) {
			changed = true
		}
	}
	return changed
}

func (s wset) clone() wset {
	c := make(wset, len(s))
	for k, w := range s {
		c[k] = w
	}
	return c
}

// real returns only the non-parameter witnesses.
func (s wset) real() wset {
	r := wset{}
	for k, w := range s {
		if _, isParam := paramIndex(k); !isParam {
			r[k] = w
		}
	}
	return r
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

// sinkHit records taint reaching a sink call inside a function (or one of
// its callees, with the chain extended accordingly).
type sinkHit struct {
	sink  string    // sink label from sinkFuncs
	pos   token.Pos // the sink call site
	pkgIx int       // index of the package containing pos
	chain []string  // functions from summary owner to the sink
}

// summary is the interprocedural contract of one function.
type summary struct {
	nParams int
	nRets   int
	// retSource[j]: real taint carried by result j regardless of inputs.
	retSource []wset
	// paramRet[i][j]: non-nil if param i flows to result j; the value is
	// the chain of helpers traversed on the way.
	paramRet [][][]string
	// paramSink[i]: sinks param i reaches inside this function or below.
	paramSink [][]sinkHit
}

func newSummary(nParams, nRets int) *summary {
	s := &summary{nParams: nParams, nRets: nRets}
	s.retSource = make([]wset, nRets)
	for j := range s.retSource {
		s.retSource[j] = wset{}
	}
	s.paramRet = make([][][]string, nParams)
	for i := range s.paramRet {
		s.paramRet[i] = make([][]string, nRets)
	}
	s.paramSink = make([][]sinkHit, nParams)
	return s
}

func (s *summary) addParamSink(i int, h sinkHit) bool {
	for _, e := range s.paramSink[i] {
		if e.pos == h.pos && e.sink == h.sink {
			return false
		}
	}
	s.paramSink[i] = append(s.paramSink[i], h)
	return true
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

// fnNode is one function with a body in the loaded universe.
type fnNode struct {
	key   string
	fn    *types.Func
	decl  *ast.FuncDecl
	pkgIx int
	// callees are funcKeys of statically resolved calls with bodies.
	callees map[string]bool
	sum     *summary
}

// Engine holds the call graph and computed summaries for one loaded
// package universe. Build once per RunAnalyzers invocation; analyzers
// with a RunEngine hook receive it.
type Engine struct {
	pkgs  []*Package
	fns   map[string]*fnNode
	order [][]string // SCCs, callees before callers
	// globalTaint holds real taint of struct fields and package-level
	// variables, keyed by objKey.
	globalTaint map[string]wset
	// findings collected by the reporting pass, deduplicated engine-wide
	// by (sink position, source kind, source position) so two callers of
	// one leaky helper yield one finding.
	findings map[string]engineFinding
}

type engineFinding struct {
	pos    token.Pos
	pkgIx  int
	kind   string
	srcPos token.Position
	sink   string
	chain  []string
}

// objKey names a struct field or package-level variable engine-wide.
// Fields are keyed by declaration site (file base name + line + name), so
// same-named fields of different structs in one package stay distinct;
// gc export data preserves declaration positions, so a field seen through
// an import keys the same as in its source-loaded package.
func objKey(fset *token.FileSet, obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	if v.IsField() {
		pos := fset.Position(v.Pos())
		return v.Pkg().Path() + ".field." + filepath.Base(pos.Filename) + ":" +
			strconv.Itoa(pos.Line) + "." + v.Name()
	}
	// Package-level variable?
	if v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + ".var." + v.Name()
	}
	return ""
}

// NewEngine builds the call graph and computes all summaries.
func NewEngine(pkgs []*Package) *Engine {
	e := &Engine{
		pkgs:        pkgs,
		fns:         map[string]*fnNode{},
		globalTaint: map[string]wset{},
		findings:    map[string]engineFinding{},
	}
	for ix, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcID(fn)
				if key == "" {
					continue
				}
				e.fns[key] = &fnNode{key: key, fn: fn, decl: fd, pkgIx: ix}
			}
		}
	}
	for _, node := range e.fns {
		node.callees = e.collectCallees(node)
	}
	e.order = e.sccOrder()
	e.computeSummaries()
	e.reportingPass()
	return e
}

// collectCallees records the statically resolvable callees of node that
// have bodies in the universe.
func (e *Engine) collectCallees(node *fnNode) map[string]bool {
	out := map[string]bool{}
	pkg := e.pkgs[node.pkgIx]
	ast.Inspect(node.decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pkg.Info, call); fn != nil {
			if key := funcID(fn); key != "" {
				if _, have := e.fns[key]; have {
					out[key] = true
				}
			}
		}
		return true
	})
	return out
}

// staticCallee resolves a call to its *types.Func when the target is a
// package function or a concrete method (interface calls and func values
// return the interface/abstract method, which simply has no body node).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// sccOrder returns Tarjan SCCs in reverse topological order (callees
// before callers), deterministically.
func (e *Engine) sccOrder() [][]string {
	keys := make([]string, 0, len(e.fns))
	for k := range e.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		callees := make([]string, 0, len(e.fns[v].callees))
		for c := range e.fns[v].callees {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		for _, w := range callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	// Tarjan emits SCCs in reverse topological order already (a
	// component is completed only after everything it reaches).
	return sccs
}

// computeSummaries runs the bottom-up summary phase, iterating the whole
// schedule until the engine-wide field/global taint set stabilizes.
func (e *Engine) computeSummaries() {
	for round := 0; round < 4; round++ {
		changed := false
		for _, scc := range e.order {
			// Members of an SCC iterate together until their summaries
			// stop changing.
			for iter := 0; iter < 8; iter++ {
				sccChanged := false
				for _, key := range scc {
					node := e.fns[key]
					fa := e.analyze(node, false)
					if e.installSummary(node, fa) {
						sccChanged = true
					}
				}
				if !sccChanged {
					break
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// installSummary replaces node's summary with the freshly computed one,
// reporting whether anything grew.
func (e *Engine) installSummary(node *fnNode, fresh *summary) bool {
	old := node.sum
	node.sum = fresh
	if old == nil {
		return true
	}
	if len(old.retSource) != len(fresh.retSource) {
		return true
	}
	for j := range fresh.retSource {
		if len(fresh.retSource[j]) != len(old.retSource[j]) {
			return true
		}
	}
	for i := range fresh.paramRet {
		for j := range fresh.paramRet[i] {
			if (fresh.paramRet[i][j] != nil) != (old.paramRet[i][j] != nil) {
				return true
			}
		}
	}
	for i := range fresh.paramSink {
		if len(fresh.paramSink[i]) != len(old.paramSink[i]) {
			return true
		}
	}
	return false
}

// reportingPass re-analyzes every function with final summaries and
// collects real-taint-reaches-sink findings.
func (e *Engine) reportingPass() {
	for _, scc := range e.order {
		for _, key := range scc {
			e.analyze(e.fns[key], true)
		}
	}
}

// sortedFindings returns the reporting-pass results in deterministic
// (package, position) order.
func (e *Engine) sortedFindings() []engineFinding {
	out := make([]engineFinding, 0, len(e.findings))
	for _, f := range e.findings {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pkgIx != b.pkgIx {
			return a.pkgIx < b.pkgIx
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.kind < b.kind
	})
	return out
}

// ---------------------------------------------------------------------------
// Intra-function analysis
// ---------------------------------------------------------------------------

// fnAnalysis is the per-function environment of one analyze run.
type fnAnalysis struct {
	eng    *Engine
	node   *fnNode
	pkg    *Package
	report bool
	env    map[types.Object]wset
	// closures maps local variables bound to exactly one FuncLit, so
	// calls through them can use the lit's return taint.
	closures map[types.Object]*ast.FuncLit
	// litRets caches per-FuncLit return taints from the current walk.
	litRets map[*ast.FuncLit][]wset
	sum     *summary
}

// analyze runs the flow-insensitive fixpoint over node's body. With
// report=false it computes and returns a fresh summary; with report=true
// it emits findings for real taint reaching sinks.
func (e *Engine) analyze(node *fnNode, report bool) *summary {
	pkg := e.pkgs[node.pkgIx]
	sig := node.fn.Type().(*types.Signature)
	params := flattenParams(sig)
	nRets := sig.Results().Len()

	fa := &fnAnalysis{
		eng:      e,
		node:     node,
		pkg:      pkg,
		report:   report,
		env:      map[types.Object]wset{},
		closures: map[types.Object]*ast.FuncLit{},
		litRets:  map[*ast.FuncLit][]wset{},
		sum:      newSummary(len(params), nRets),
	}
	// Seed parameters (receiver first) with their synthetic kinds.
	for i, p := range params {
		if p == nil {
			continue
		}
		fa.env[p] = wset{paramKind(i): {kind: paramKind(i)}}
	}
	retTaint := make([]wset, nRets)
	for j := range retTaint {
		retTaint[j] = wset{}
	}
	for iter := 0; iter < 12; iter++ {
		// Closure bodies are re-walked each iteration so taint captured
		// from the enclosing scope after the first pass still propagates.
		fa.litRets = map[*ast.FuncLit][]wset{}
		changed := fa.walkBody(node.decl.Body, retTaint, sig)
		if !changed {
			break
		}
	}
	// Fold return taints into the summary.
	for j, ts := range retTaint {
		for kind, w := range ts {
			if i, isParam := paramIndex(kind); isParam {
				if fa.sum.paramRet[i][j] == nil {
					fa.sum.paramRet[i][j] = append([]string{}, w.chain...)
				}
				continue
			}
			fa.sum.retSource[j].add(w.withChain(shortName(node.fn)))
		}
	}
	return fa.sum
}

// flattenParams returns receiver + parameters as objects (nil entries for
// unnamed/underscore parameters keep indexes stable).
func flattenParams(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// walkBody processes every statement once, in source order, merging taint
// into fa.env; returns whether anything changed.
func (fa *fnAnalysis) walkBody(body *ast.BlockStmt, retTaint []wset, sig *types.Signature) bool {
	w := &stmtWalker{fa: fa, retTaint: retTaint, sig: sig}
	w.stmt(body)
	return w.changed
}

type stmtWalker struct {
	fa       *fnAnalysis
	retTaint []wset
	sig      *types.Signature
	changed  bool
}

func (w *stmtWalker) merge(obj types.Object, ts wset) {
	if obj == nil || len(ts) == 0 {
		return
	}
	cur := w.fa.env[obj]
	if cur == nil {
		cur = wset{}
		w.fa.env[obj] = cur
	}
	if cur.union(ts) {
		w.changed = true
	}
	// Stores into struct fields and package-level variables publish real
	// taint engine-wide.
	if key := objKey(w.fa.pkg.Fset, obj); key != "" {
		real := ts.real()
		if len(real) > 0 {
			g := w.fa.eng.globalTaint[key]
			if g == nil {
				g = wset{}
				w.fa.eng.globalTaint[key] = g
			}
			if g.union(real) {
				w.changed = true
			}
		}
	}
}

func (w *stmtWalker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				w.valueSpec(vs)
			}
		}
	case *ast.ReturnStmt:
		w.ret(s)
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Post)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		// `switch v := x.(type)`: each clause binds a distinct implicit
		// object for v; all of them get x's taint.
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			ts := w.expr(as.Rhs[0])
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					if obj, ok := w.fa.pkg.Info.Implicits[cc]; ok {
						w.merge(obj, ts)
					}
				}
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			w.expr(es.X)
		}
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, x := range s.List {
			w.expr(x)
		}
		for _, st := range s.Body {
			w.stmt(st)
		}
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.CommClause:
		// handled by selectStmt
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *stmtWalker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		// var a, b = f()
		tss := w.callResults(vs.Values[0], len(vs.Names))
		for i, name := range vs.Names {
			obj := w.fa.pkg.Info.Defs[name]
			w.bindClosure(obj, vs.Values[0])
			w.merge(obj, tss[i])
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			obj := w.fa.pkg.Info.Defs[name]
			w.bindClosure(obj, vs.Values[i])
			w.merge(obj, w.expr(vs.Values[i]))
		}
	}
}

// bindClosure records `v := func(...){...}` so calls through v resolve.
func (w *stmtWalker) bindClosure(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
		w.fa.closures[obj] = lit
	}
}

func (w *stmtWalker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		tss := w.callResults(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			w.store(lhs, tss[i])
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		ts := w.expr(s.Rhs[i])
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				var obj types.Object
				if s.Tok == token.DEFINE {
					obj = w.fa.pkg.Info.Defs[id]
				} else {
					obj = w.fa.pkg.Info.Uses[id]
				}
				w.bindClosure(obj, s.Rhs[i])
			}
		}
		w.store(lhs, ts)
	}
}

// callResults evaluates a single-call RHS feeding n targets.
func (w *stmtWalker) callResults(rhs ast.Expr, n int) []wset {
	out := make([]wset, n)
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		rets := w.call(call)
		for i := 0; i < n; i++ {
			if i < len(rets) {
				out[i] = rets[i]
			} else {
				out[i] = wset{}
			}
		}
		return out
	}
	// map lookup `v, ok := m[k]`, type assertion, channel receive.
	ts := w.expr(rhs)
	for i := range out {
		out[i] = ts
	}
	return out
}

// store merges ts into the object behind an lvalue.
func (w *stmtWalker) store(lhs ast.Expr, ts wset) {
	if len(ts) == 0 {
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := w.fa.pkg.Info.Defs[lhs]
		if obj == nil {
			obj = w.fa.pkg.Info.Uses[lhs]
		}
		w.merge(obj, ts)
	case *ast.SelectorExpr:
		// x.f = v: taint the field object (engine-wide for real kinds)
		// and the base object.
		if sel, ok := w.fa.pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			w.merge(sel.Obj(), ts)
		} else {
			w.merge(w.fa.pkg.Info.Uses[lhs.Sel], ts)
		}
		w.merge(rootObjOf(w.fa.pkg.Info, lhs.X), ts)
	case *ast.IndexExpr:
		// Element store taints the container — except that storing into a
		// *map* erases iteration-order taint: map contents are
		// order-independent however they were inserted.
		base := rootObjOf(w.fa.pkg.Info, lhs.X)
		if tv, ok := w.fa.pkg.Info.Types[lhs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				ts = ts.clone()
				delete(ts, kindMapOrder)
			}
		}
		w.merge(base, ts)
	case *ast.StarExpr:
		w.merge(rootObjOf(w.fa.pkg.Info, lhs.X), ts)
	}
}

func (w *stmtWalker) ret(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		// Bare return with named results: fold env of the named result
		// objects.
		res := w.sig.Results()
		for j := 0; j < res.Len(); j++ {
			if v := res.At(j); v != nil && v.Name() != "" {
				if ts := w.fa.env[v]; ts != nil {
					if w.retTaint[j].union(ts) {
						w.changed = true
					}
				}
			}
		}
		return
	}
	if len(s.Results) == 1 && len(w.retTaint) > 1 {
		tss := w.callResults(s.Results[0], len(w.retTaint))
		for j := range w.retTaint {
			if w.retTaint[j].union(tss[j]) {
				w.changed = true
			}
		}
		return
	}
	for j, r := range s.Results {
		if j >= len(w.retTaint) {
			break
		}
		if w.retTaint[j].union(w.expr(r)) {
			w.changed = true
		}
	}
}

func (w *stmtWalker) rangeStmt(s *ast.RangeStmt) {
	ts := w.expr(s.X)
	tv, ok := w.fa.pkg.Info.Types[s.X]
	keyTaint, valTaint := ts, ts
	if ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			// Map iteration: the sequence of keys/values is
			// order-nondeterministic.
			mo := wset{kindMapOrder: {kind: kindMapOrder, pos: s.Pos(), fset: w.fa.pkg.Fset,
				chain: []string{shortName(w.fa.node.fn)}}}
			keyTaint = keyTaint.clone()
			keyTaint.union(mo)
			valTaint = keyTaint
		}
	}
	for taint, e := range map[*wset]ast.Expr{&keyTaint: s.Key, &valTaint: s.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			obj := w.fa.pkg.Info.Defs[id]
			if obj == nil {
				obj = w.fa.pkg.Info.Uses[id]
			}
			w.merge(obj, *taint)
		} else {
			w.store(e, *taint)
		}
	}
	w.stmt(s.Body)
}

func (w *stmtWalker) selectStmt(s *ast.SelectStmt) {
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			// v := <-ch inside select: which arm ran is nondeterministic.
			sel := wset{kindSelect: {kind: kindSelect, pos: s.Pos(), fset: w.fa.pkg.Fset,
				chain: []string{shortName(w.fa.node.fn)}}}
			for _, lhs := range as.Lhs {
				w.store(lhs, sel)
			}
			for _, rhs := range as.Rhs {
				w.expr(rhs)
			}
		} else {
			w.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			w.stmt(st)
		}
	}
}

// expr computes the taint of an expression, with all side effects
// (calls, closure bodies) applied.
func (w *stmtWalker) expr(e ast.Expr) wset {
	if e == nil {
		return wset{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.fa.pkg.Info.Uses[e]
		if obj == nil {
			obj = w.fa.pkg.Info.Defs[e]
		}
		out := wset{}
		if ts := w.fa.env[obj]; ts != nil {
			out.union(ts)
		}
		if obj != nil {
			if key := objKey(w.fa.pkg.Fset, obj); key != "" {
				if g := w.fa.eng.globalTaint[key]; g != nil {
					out.union(g)
				}
			}
		}
		return out
	case *ast.SelectorExpr:
		out := wset{}
		if sel, ok := w.fa.pkg.Info.Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				obj := sel.Obj()
				if ts := w.fa.env[obj]; ts != nil {
					out.union(ts)
				}
				if key := objKey(w.fa.pkg.Fset, obj); key != "" {
					if g := w.fa.eng.globalTaint[key]; g != nil {
						out.union(g)
					}
				}
			}
			out.union(w.expr(e.X))
			return out
		}
		// Qualified identifier pkg.Var / pkg.Func.
		if obj := w.fa.pkg.Info.Uses[e.Sel]; obj != nil {
			if key := objKey(w.fa.pkg.Fset, obj); key != "" {
				if g := w.fa.eng.globalTaint[key]; g != nil {
					out.union(g)
				}
			}
		}
		return out
	case *ast.CallExpr:
		rets := w.call(e)
		out := wset{}
		for _, ts := range rets {
			out.union(ts)
		}
		return out
	case *ast.BinaryExpr:
		out := w.expr(e.X).clone()
		out.union(w.expr(e.Y))
		return out
	case *ast.UnaryExpr:
		return w.expr(e.X)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		out := w.expr(e.X).clone()
		out.union(w.expr(e.Index))
		return out
	case *ast.IndexListExpr:
		return w.expr(e.X)
	case *ast.SliceExpr:
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		out := wset{}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out.union(w.expr(kv.Value))
				continue
			}
			out.union(w.expr(el))
		}
		return out
	case *ast.FuncLit:
		// Closures are analyzed inline against the enclosing
		// environment, so captured variables flow both ways. The lit's
		// own returns are cached for calls through a bound variable.
		w.funcLit(e)
		return wset{}
	}
	return wset{}
}

// funcLit analyzes a closure body inline and records its return taints.
func (w *stmtWalker) funcLit(lit *ast.FuncLit) []wset {
	if cached, ok := w.fa.litRets[lit]; ok {
		// Already walked this iteration? Walk again anyway only once per
		// outer iteration to keep cost bounded.
		return cached
	}
	sig, _ := w.fa.pkg.Info.Types[lit].Type.(*types.Signature)
	nRets := 0
	if sig != nil {
		nRets = sig.Results().Len()
	}
	rets := make([]wset, nRets)
	for j := range rets {
		rets[j] = wset{}
	}
	w.fa.litRets[lit] = rets
	inner := &stmtWalker{fa: w.fa, retTaint: rets, sig: sig}
	inner.stmt(lit.Body)
	if inner.changed {
		w.changed = true
	}
	return rets
}

// sortStrip removes map-order taint from objects passed to a sort call:
// the sorted-keys idiom launders iteration order by construction.
func (w *stmtWalker) sortStrip(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := w.fa.pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	if p := pn.Imported().Path(); p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if obj := rootObjOf(w.fa.pkg.Info, arg); obj != nil {
			if ts := w.fa.env[obj]; ts != nil {
				delete(ts, kindMapOrder)
			}
		}
	}
	return true
}

// call evaluates a call expression: source intrinsics, summaries of known
// callees, sink checks, and the default propagate-args-to-results rule
// for everything unresolvable.
func (w *stmtWalker) call(call *ast.CallExpr) []wset {
	info := w.fa.pkg.Info

	// Conversions: T(x) keeps x's taint; uintptr(unsafe.Pointer) makes a
	// pointer value printable and is itself a source.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		ts := w.expr(call.Args[0]).clone()
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if atv, ok := info.Types[call.Args[0]]; ok {
				if ab, ok := atv.Type.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					ts.add(witness{kind: kindPtrFormat, pos: call.Pos(), fset: w.fa.pkg.Fset,
						chain: []string{shortName(w.fa.node.fn)}})
				}
			}
		}
		return []wset{ts}
	}

	if w.sortStrip(call) {
		for _, a := range call.Args {
			w.expr(a)
		}
		return []wset{{}}
	}

	// Evaluate arguments (and the receiver, if any) up front.
	argTaint := make([]wset, 0, len(call.Args)+1)
	var recvTaint wset
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvTaint = w.expr(sel.X)
		}
	}
	for _, a := range call.Args {
		argTaint = append(argTaint, w.expr(a))
	}

	fn := staticCallee(info, call)
	key := funcID(fn)

	// Source intrinsics.
	if kind := sourceKindFor(fn); kind != "" {
		src := wset{}
		if recvTaint != nil {
			src.union(recvTaint)
		}
		for _, ts := range argTaint {
			src.union(ts)
		}
		src.add(witness{kind: kind, pos: call.Pos(), fset: w.fa.pkg.Fset,
			chain: []string{shortName(w.fa.node.fn)}})
		return []wset{src}
	}

	// %p laundering through fmt.
	ptrFmt := false
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		for _, a := range call.Args {
			if lit, ok := ast.Unparen(a).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%p") {
					ptrFmt = true
				}
			}
		}
	}

	// Full parameter list as the callee sees it: receiver first.
	fullArgs := argTaint
	if recvTaint != nil {
		fullArgs = append([]wset{recvTaint}, argTaint...)
	}

	// Sink check: only payload positions count (see sinkSpec).
	if spec, isSink := sinkFuncs[key]; isSink {
		inputs := argTaint
		if spec.recv && recvTaint != nil {
			inputs = fullArgs
		}
		for _, ts := range inputs {
			w.hitSink(spec.label, call.Pos(), ts, nil)
		}
	}

	// Known callee with a body: apply its summary.
	if node, ok := w.fa.eng.fns[key]; ok && node.sum != nil {
		return w.applySummary(node, call, fullArgs)
	}

	// Local closure called through a variable, or an immediate call of a
	// FuncLit.
	if lit := w.calleeLit(call); lit != nil {
		rets := w.funcLit(lit)
		out := make([]wset, len(rets))
		for j := range rets {
			out[j] = rets[j].clone()
		}
		return out
	}

	// Unknown callee (stdlib without a summary, interface method, func
	// value): conservatively propagate every input to every output.
	out := wset{}
	if recvTaint != nil {
		out.union(recvTaint)
	}
	for _, ts := range argTaint {
		out.union(ts)
	}
	if ptrFmt {
		out.add(witness{kind: kindPtrFormat, pos: call.Pos(), fset: w.fa.pkg.Fset,
			chain: []string{shortName(w.fa.node.fn)}})
	}
	n := 1
	if tv, ok := info.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			n = tuple.Len()
		}
	}
	rets := make([]wset, n)
	for j := range rets {
		rets[j] = out
	}
	return rets
}

// calleeLit resolves a call through a locally bound closure variable or an
// immediately invoked FuncLit.
func (w *stmtWalker) calleeLit(call *ast.CallExpr) *ast.FuncLit {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		if obj := w.fa.pkg.Info.Uses[fun]; obj != nil {
			return w.fa.closures[obj]
		}
	}
	return nil
}

// applySummary folds a callee's summary into this call site.
func (w *stmtWalker) applySummary(callee *fnNode, call *ast.CallExpr, fullArgs []wset) []wset {
	sum := callee.sum
	rets := make([]wset, sum.nRets)
	for j := range rets {
		rets[j] = wset{}
		for _, src := range sum.retSource[j] {
			rets[j].add(src)
		}
	}
	feed := func(i int, ts wset) {
		if len(ts) == 0 {
			return
		}
		// Param flows to results.
		for j := 0; j < sum.nRets; j++ {
			if chain := sum.paramRet[i][j]; chain != nil {
				links := append(append([]string{}, chain...), shortName(callee.fn))
				for _, wit := range ts {
					rets[j].add(wit.withChain(links...))
				}
			}
		}
		// Param flows to a sink inside the callee.
		for _, hit := range sum.paramSink[i] {
			for _, wit := range ts {
				w.hitSink(hit.sink, hit.pos, wset{wit.kind: wit}, append([]string{}, hit.chain...))
			}
		}
	}
	for i := 0; i < sum.nParams && i < len(fullArgs); i++ {
		feed(i, fullArgs[i])
	}
	// Extra args beyond the summary's params fold into the last
	// (variadic) parameter.
	if len(fullArgs) > sum.nParams && sum.nParams > 0 {
		for _, ts := range fullArgs[sum.nParams:] {
			feed(sum.nParams-1, ts)
		}
	}
	return rets
}

// hitSink records taint arriving at a sink: parameter taint feeds the
// summary, real taint becomes a finding (reporting pass only). extraChain
// is the path from the current function into the sink for hits forwarded
// out of callee summaries (nil for direct sink calls).
func (w *stmtWalker) hitSink(label string, pos token.Pos, ts wset, extraChain []string) {
	for kind, wit := range ts {
		if i, isParam := paramIndex(kind); isParam {
			w.fa.sum.addParamSink(i, sinkHit{
				sink:  label,
				pos:   pos,
				pkgIx: w.sinkPkgIx(pos),
				chain: joinChain(wit.chain, []string{shortName(w.fa.node.fn)}, extraChain),
			})
			continue
		}
		if !w.fa.report {
			continue
		}
		srcPos := wit.fset.Position(wit.pos)
		dedup := fmt.Sprintf("%s|%v|%s|%s", label, pos, kind, srcPos)
		if _, seen := w.fa.eng.findings[dedup]; seen {
			continue
		}
		w.fa.eng.findings[dedup] = engineFinding{
			pos:    pos,
			pkgIx:  w.sinkPkgIx(pos),
			kind:   kind,
			srcPos: srcPos,
			sink:   label,
			chain:  joinChain(wit.chain, []string{shortName(w.fa.node.fn)}, extraChain),
		}
	}
}

// joinChain concatenates chain segments, dropping consecutive duplicates.
func joinChain(segs ...[]string) []string {
	var out []string
	for _, seg := range segs {
		for _, s := range seg {
			if len(out) == 0 || out[len(out)-1] != s {
				out = append(out, s)
			}
		}
	}
	return out
}

// sinkPkgIx maps a sink position to the package whose fileset knows it.
// Positions forwarded from callee summaries belong to the callee's
// package; since Load shares one FileSet across packages, resolving
// through the current package is correct there, and hits recorded during
// a callee's own summary already carry its pkgIx through the summary.
func (w *stmtWalker) sinkPkgIx(pos token.Pos) int {
	for ix, pkg := range w.fa.eng.pkgs {
		for _, f := range pkg.Files {
			if f.Pos() <= pos && pos <= f.End() {
				return ix
			}
		}
	}
	return w.fa.node.pkgIx
}

// sourceKindFor classifies a resolved callee as a nondeterminism source.
func sourceKindFor(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if kind, ok := sourceFuncs[funcID(fn)]; ok {
		return kind
	}
	if kind, ok := sourcePkgs[fn.Pkg().Path()]; ok {
		return kind
	}
	return ""
}

// rootObjOf resolves the variable or field at the base of an lvalue
// expression (shared with the nondet analyzer's rootObject, but
// Info-parameterized so the engine can use it for any package).
func rootObjOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return rootObjOf(info, e.X)
	case *ast.UnaryExpr:
		return rootObjOf(info, e.X)
	case *ast.StarExpr:
		return rootObjOf(info, e.X)
	case *ast.IndexExpr:
		return rootObjOf(info, e.X)
	case *ast.SliceExpr:
		return rootObjOf(info, e.X)
	}
	return nil
}
