package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LaneConsistencyAnalyzer statically checks the conflict-API discipline
// introduced with parallel execution lanes: a synchronization object bound
// to lane L (papi's NewMutexLane/NewCondLane/NewRWMutexLane, or NewCond,
// which binds to the creating thread's lane) must only be used by threads
// assigned to L. Cross-lane sharing is what the *unbound* NewMutex /
// NewRWMutex constructors are for — they go through the deterministic
// merge — so a lane-bound object reaching another lane's threads is
// conflict-map drift: the declaration says the lanes don't conflict, the
// code says they do. The scheduler panics on such uses at runtime
// (dmt.Thread.assertLane); this analyzer catches them at lint time, the
// way lockorder catches deadlocks before they schedule.
//
// Lane identities are tracked symbolically: a lane is either a constant
// (NewMutexLane(2)) or a variable (NewMutexLane(lane) inside a per-lane
// setup loop). A use is flagged when the object's binding and the using
// thread's lane are both known and definitely refer to different lanes —
// two unequal constants, or two distinct lane variables. Thread lanes come
// from papi.T.SpawnLane(lane, ...) closures; plain Spawn children inherit
// the spawner's lane, matching the runtime rule. Function values that
// escape (assigned to variables, passed as arguments) run with unknown
// lane and are not checked — the runtime assertion remains the backstop.
var LaneConsistencyAnalyzer = &Analyzer{
	Name: "laneconsistency",
	Doc: "report lane-bound papi sync objects used from threads of a " +
		"different lane (conflict-map drift)",
	Run: runLaneConsistency,
}

// laneVal is a symbolic lane identity: a constant index or the variable
// that holds the lane number.
type laneVal struct {
	known   bool
	isConst bool
	c       int64
	obj     types.Object
}

func (v laneVal) String() string {
	switch {
	case !v.known:
		return "?"
	case v.isConst:
		return fmt.Sprintf("lane %d", v.c)
	default:
		return fmt.Sprintf("lane variable %q", v.obj.Name())
	}
}

// differs reports whether two lane identities are definitely distinct
// lanes. A constant and a variable may coincide at runtime, so mixed
// comparisons are never "different".
func (v laneVal) differs(o laneVal) bool {
	if !v.known || !o.known || v.isConst != o.isConst {
		return false
	}
	if v.isConst {
		return v.c != o.c
	}
	return v.obj != o.obj
}

// laneBinding records where and to which lane an object was bound.
type laneBinding struct {
	lane laneVal
	kind string // "papi.Mutex", "papi.Cond", "papi.RWMutex"
	obj  types.Object
}

// laneOf resolves a lane expression to a symbolic identity.
func laneOf(pass *Pass, e ast.Expr) laneVal {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return laneVal{known: true, isConst: true, c: c}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return laneVal{known: true, obj: obj}
		}
	}
	return laneVal{}
}

// papiMethod reports whether sel is a method call on the named papi type
// (T, Mutex, Cond, RWMutex), returning the type and method names.
func papiMethod(pass *Pass, sel *ast.SelectorExpr) (typ, method string, ok bool) {
	selection, found := pass.Info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "crane/internal/papi" {
		return "", "", false
	}
	return named.Obj().Name(), sel.Sel.Name, true
}

// bindTarget resolves the object an expression assigns into (variable or
// struct field).
func bindTarget(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Defs[e]; obj != nil {
			return obj
		}
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

// laneWalker carries the enclosing-function lane context through a file
// walk. SpawnLane closure bodies get the spawn's lane; Spawn closure
// bodies inherit; any other function boundary resets to unknown.
type laneWalker struct {
	pass *Pass
	// ctxOf assigns closure literals their thread-lane identity; inherit
	// marks Spawn children (lane of the lexically enclosing thread).
	ctxOf   map[*ast.FuncLit]laneVal
	inherit map[*ast.FuncLit]bool
}

// resolveContexts records the lane context of every Spawn/SpawnLane
// closure argument in the file.
func (w *laneWalker) resolveContexts(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		typ, method, ok := papiMethod(w.pass, sel)
		if !ok || typ != "T" {
			return true
		}
		switch method {
		case "SpawnLane":
			if len(call.Args) == 3 {
				if lit, isLit := call.Args[2].(*ast.FuncLit); isLit {
					w.ctxOf[lit] = laneOf(w.pass, call.Args[0])
				}
			}
		case "Spawn":
			if len(call.Args) == 2 {
				if lit, isLit := call.Args[1].(*ast.FuncLit); isLit {
					w.inherit[lit] = true
				}
			}
		}
		return true
	})
}

// walk traverses file depth-first, invoking visit with the thread-lane
// context in force at each node.
func (w *laneWalker) walk(file *ast.File, visit func(n ast.Node, ctx laneVal)) {
	var stack []ast.Node
	context := func() laneVal {
		for i := len(stack) - 1; i >= 0; i-- {
			switch n := stack[i].(type) {
			case *ast.FuncLit:
				if ctx, ok := w.ctxOf[n]; ok {
					return ctx
				}
				if !w.inherit[n] {
					return laneVal{} // escaping closure: unknown thread
				}
			case *ast.FuncDecl:
				return laneVal{}
			}
		}
		return laneVal{}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		visit(n, context())
		return true
	})
}

// laneMakers maps papi.T constructors to the bound type they make; the
// empty lane name means "binds to the creating thread's lane".
var laneMakers = map[string]string{
	"NewMutexLane":   "papi.Mutex",
	"NewCondLane":    "papi.Cond",
	"NewRWMutexLane": "papi.RWMutex",
	"NewCond":        "papi.Cond",
}

// laneUseMethods are the scheduled operations on each bound papi type.
var laneUseMethods = map[string]map[string]bool{
	"Mutex":   {"Lock": true, "Unlock": true, "TryLock": true},
	"Cond":    {"Wait": true, "Signal": true, "Broadcast": true},
	"RWMutex": {"RLock": true, "RUnlock": true, "Lock": true, "Unlock": true},
}

func runLaneConsistency(pass *Pass) {
	w := &laneWalker{
		pass:    pass,
		ctxOf:   map[*ast.FuncLit]laneVal{},
		inherit: map[*ast.FuncLit]bool{},
	}
	for _, file := range pass.Files {
		w.resolveContexts(file)
	}

	// Pass 1: collect lane bindings (uses may lexically precede them).
	bindings := map[types.Object]laneBinding{}
	bindMaker := func(target ast.Expr, rhs ast.Expr, ctx laneVal) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		typ, method, ok := papiMethod(pass, sel)
		if !ok || typ != "T" {
			return
		}
		kind, isMaker := laneMakers[method]
		if !isMaker {
			return
		}
		var lane laneVal
		if method == "NewCond" {
			lane = ctx // binds to the creating thread's lane
		} else if len(call.Args) == 1 {
			lane = laneOf(pass, call.Args[0])
		}
		if !lane.known {
			return
		}
		obj := bindTarget(pass, target)
		if obj == nil {
			return
		}
		bindings[obj] = laneBinding{lane: lane, kind: kind, obj: obj}
	}
	for _, file := range pass.Files {
		w.walk(file, func(n ast.Node, ctx laneVal) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						bindMaker(n.Lhs[i], rhs, ctx)
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) {
						bindMaker(n.Names[i], v, ctx)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok {
					bindMaker(key, n.Value, ctx)
				}
			}
		})
	}
	if len(bindings) == 0 {
		return
	}

	// Pass 2: check every scheduled operation on a bound object against
	// the thread-lane context it runs in.
	for _, file := range pass.Files {
		w.walk(file, func(n ast.Node, ctx laneVal) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			typ, method, ok := papiMethod(pass, sel)
			if !ok || typ == "T" || !laneUseMethods[typ][method] {
				return
			}
			obj := rootObject(pass, sel.X)
			if obj == nil {
				return
			}
			b, bound := bindings[obj]
			if !bound || !ctx.known || !b.lane.differs(ctx) {
				return
			}
			reportLaneMismatch(pass, call.Pos(), b, method, ctx)
		})
	}
}

func reportLaneMismatch(pass *Pass, pos token.Pos, b laneBinding, method string, ctx laneVal) {
	pass.ReportObj(pos, b.obj,
		"%s %q bound to %s but %s from a thread in %s (conflict-map drift: "+
			"move the use into its lane, or make the object cross-lane with the unbound constructor)",
		b.kind, b.obj.Name(), b.lane, method, ctx)
}
