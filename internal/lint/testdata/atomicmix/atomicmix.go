// Package atomicmix exercises the atomicmix analyzer: words accessed
// both through sync/atomic and with plain loads/stores break the
// lock-free mirror discipline.
package atomicmix

import "sync/atomic"

// stats is the mirror-discipline struct under test.
type stats struct {
	clock uint64
	ticks uint64
	clean uint64

	//crane:atomicmix-ok snapshot read at quiescent point, writers parked
	lazy uint64
}

// Bump publishes clock atomically on the hot path.
func (s *stats) Bump() { atomic.AddUint64(&s.clock, 1) }

// ReadClock observes clock with a plain load: missing acquire.
func (s *stats) ReadClock() uint64 {
	return s.clock // want `s\.clock is published with sync/atomic but observed here with a plain read \(missing acquire\)`
}

// SetTicks publishes ticks atomically.
func (s *stats) SetTicks(v uint64) { atomic.StoreUint64(&s.ticks, v) }

// ResetTicks writes ticks plainly: missing release.
func (s *stats) ResetTicks() {
	s.ticks = 0 // want `s\.ticks is accessed with sync/atomic elsewhere but published here with a plain write \(missing release\)`
}

// Clean keeps every access atomic: silent.
func (s *stats) Clean() uint64 { return atomic.LoadUint64(&s.clean) }

// AddClean stays atomic too.
func (s *stats) AddClean() { atomic.AddUint64(&s.clean, 1) }

// Lazy reads the annotated field plainly; the field-declaration
// suppression covers every use.
func (s *stats) Lazy() uint64 {
	atomic.StoreUint64(&s.lazy, 1)
	return s.lazy
}

// newStats is constructor-exempt: plain stores before the value escapes
// have no concurrent observer.
func newStats() *stats {
	s := &stats{}
	s.clock = 0
	return s
}
