// Package unreplicated uses raw concurrency and time without being under
// internal/apps or carrying a replication marker: the nondet analyzer
// must stay silent (infrastructure below the interposition layer is
// allowed — it IS the interposition layer).
package unreplicated

import (
	"sync"
	"time"
)

// Pool is infrastructure-style code: raw sync is fine here.
type Pool struct {
	mu    sync.Mutex
	items []int
}

// Put appends under the raw lock.
func (p *Pool) Put(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.items = append(p.items, v)
}

// Stamp reads physical time.
func Stamp() time.Time {
	go func() {}()
	return time.Now()
}
