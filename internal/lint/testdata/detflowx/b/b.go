// Package b launders the timestamp through formatting: after this hop
// the value is a plain string with no textual tie to package time.
package b

import (
	"fmt"

	"crane/internal/lint/testdata/detflowx/a"
)

// Tag renders the stamp into a request label.
func Tag() string { return fmt.Sprintf("req-%d", a.Stamp()) }
