// Package c is replicated and sinks the laundered label into the output
// fingerprint. nondet sees no raw source anywhere in this package;
// detflow reports the full cross-package chain at the sink.
//
//crane:replicated
package c

import (
	"crane/internal/lint/testdata/detflowx/b"
	"crane/internal/trace"
)

var out = trace.NewOutputLog("c")

// Emit records the laundered label.
func Emit() {
	out.Record(1, []byte(b.Tag())) // want `nondeterministic value \(time\.Now at [^)]*a/a\.go[^)]*\) reaches trace\.OutputLog\.Record via a\.Stamp → b\.Tag → c\.Emit`
}
