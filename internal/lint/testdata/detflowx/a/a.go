// Package a holds the nondeterminism source, two packages away from any
// sink and outside the replicated scope — the nondet pattern matcher
// never even analyzes it.
package a

import "time"

// Stamp returns the local wall-clock reading.
func Stamp() int64 { return time.Now().UnixNano() }
