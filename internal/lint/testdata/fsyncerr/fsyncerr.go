// Package fsyncerr exercises the durability-error analyzer over the real
// wal.Log API and os.File write paths.
package fsyncerr

import (
	"os"

	"crane/internal/wal"
)

// DropSync discards a WAL sync result outright.
func DropSync(l *wal.Log) {
	l.Sync() // want `wal\.Log\.Sync error dropped`
}

// BlankAppend discards the append error with a blank identifier.
func BlankAppend(l *wal.Log, rec wal.Record) {
	_ = l.Append(rec) // want `wal\.Log\.Append error discarded with _`
}

// ShadowedAppend overwrites the first append's error before checking it.
func ShadowedAppend(l *wal.Log, a, b wal.Record) error {
	err := l.Append(a) // want `wal\.Log\.Append error in err is overwritten at line \d+ before being checked`
	err = l.Append(b)
	return err
}

// NeverChecked leaves the last durability error unread.
func NeverChecked(l *wal.Log, rec wal.Record) {
	var err error
	err = l.Append(rec)
	if err != nil {
		return
	}
	err = l.Sync() // want `wal\.Log\.Sync error assigned to err but never checked`
}

// Checked is the correct pattern: no findings.
func Checked(l *wal.Log, rec wal.Record) error {
	if err := l.Append(rec); err != nil {
		return err
	}
	return l.Sync()
}

// WriteFile drops both the sync and the close error on a write path.
func WriteFile(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Sync()  // want `os\.File\.Sync error dropped`
	f.Close() // want `os\.File\.Close \(write path\) error dropped`
	return nil
}

// DeferredClose defers the close on a write path, silently losing the
// error.
func DeferredClose(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred os\.File\.Close \(write path\) drops the error`
	_, err = f.Write(b)
	return err
}

// ReadFile closes on a pure read path: Close errors lose nothing durable,
// no finding.
func ReadFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	f.Close()
	return buf[:n], err
}
