// Package groncouple exercises the groncouple analyzer: every accepted
// way of indexing //crane:pergroup state — group-range keys, g-named
// parameters, router results, explicit constants — plus the cross-group
// reads that must be flagged (lane indexes, connection-derived counters,
// arbitrary arithmetic) and the suppression escape hatch.
package groncouple

type node struct{ commit uint64 }

type queue struct{ pend int }

type replica struct {
	nodes  []*node  //crane:pergroup
	queues []*queue //crane:pergroup
	lanes  []*queue // NOT per-group: lane state, indexed freely
	groups int
}

func groupForConn(conn uint64, groups int) int { return int(conn) % groups }

func (r *replica) laneOf(conn uint64) int { return int(conn) % len(r.lanes) }

// ok covers the accepted index forms.
func (r *replica) ok(conn uint64) uint64 {
	var sum uint64
	// Range over a per-group field: the key is a group id whatever it is
	// named.
	for i, nd := range r.nodes {
		sum += nd.commit + uint64(r.queues[i].pend)
	}
	// Conventional group-id names.
	for g := 0; g < r.groups; g++ {
		sum += r.nodes[g].commit
	}
	// Router results and explicit constants.
	sum += r.nodes[groupForConn(conn, r.groups)].commit
	sum += r.nodes[0].commit
	// Lane state is not per-group; any index is fine.
	sum += uint64(r.lanes[r.laneOf(conn)].pend)
	return sum
}

// bad covers the cross-group reads the analyzer exists for.
func (r *replica) bad(conn uint64, lane int) uint64 {
	var sum uint64
	sum += r.nodes[lane].commit             // want `per-group field r\.nodes indexed by "lane"`
	sum += uint64(r.queues[int(conn)].pend) // want `per-group field r\.queues indexed by "int\(\.\.\.\)"`
	for i, lq := range r.lanes {
		sum += uint64(lq.pend) + r.nodes[i].commit // want `per-group field r\.nodes indexed by "i"`
	}
	sum += r.nodes[lane].commit //crane:groncouple-ok fixture: deliberate cross-group read
	return sum
}
