// Package specleak exercises the speculation-gate analyzer: in gated
// code, externally visible effects (socket writes, output-log records,
// WAL appends) must route through the speculator so an open window can
// buffer them — direct calls are leaks no rollback can recall.
//
//crane:specgated
package specleak

import (
	"crane/internal/simnet"
	"crane/internal/trace"
	"crane/internal/wal"
)

// LeakWrite sends bytes to a client around the gate buffer.
func LeakWrite(c *simnet.Conn, b []byte) {
	c.Write(b) // want `simnet\.Conn\.Write bypasses the speculation gate`
}

// LeakRecord stamps the cross-replica output fingerprint directly.
func LeakRecord(l *trace.OutputLog, conn uint64, b []byte) {
	l.Record(conn, b) // want `trace\.OutputLog\.Record bypasses the speculation gate`
}

// LeakAppend makes a possibly-aborted effect durable.
func LeakAppend(w *wal.Log, rec wal.Record) error {
	return w.Append(rec) // want `wal\.Log\.Append bypasses the speculation gate`
}

// LeakAppendBatch is the batched variant of the same leak.
func LeakAppendBatch(w *wal.Log, recs []wal.Record) error {
	return w.AppendBatch(recs) // want `wal\.Log\.AppendBatch bypasses the speculation gate`
}

// SuppressedWrite is a deliberate, annotated escape: no finding.
func SuppressedWrite(c *simnet.Conn, b []byte) {
	c.Write(b) //crane:specleak-ok exercised only before any window can open
}

// ReadsAreFine consumes input; only effect-producing calls are gated.
func ReadsAreFine(c *simnet.Conn, b []byte) (int, error) {
	return c.Read(b)
}
