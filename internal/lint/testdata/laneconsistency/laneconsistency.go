// Package laneconsistency exercises the laneconsistency analyzer: every
// way a lane-bound papi synchronization object can drift into another
// lane's threads, plus the patterns that must stay clean — unbound
// (cross-lane) objects, in-lane use, Spawn inheritance, and variable-lane
// setup loops of the kind the real servers use.
package laneconsistency

import "crane/internal/papi"

// constLanes covers constant lane bindings: a mutex, cond, and rwmutex
// bound to fixed lanes, used correctly and incorrectly from SpawnLane
// closures and from a plain Spawn child (which inherits its parent's
// lane).
func constLanes(t papi.T) {
	m0 := t.NewMutexLane(0)
	m1 := t.NewMutexLane(1)
	c1 := t.NewCondLane(1)
	rw2 := t.NewRWMutexLane(2)
	cross := t.NewMutex() // unbound: usable from any lane

	t.SpawnLane(1, "w1", func(wt papi.T) {
		m1.Lock(wt)
		m1.Unlock(wt)
		c1.Signal(wt)
		cross.Lock(wt)
		cross.Unlock(wt)
		m0.Lock(wt)     // want `papi\.Mutex "m0" bound to lane 0 but Lock from a thread in lane 1`
		m0.Unlock(wt)   // want `papi\.Mutex "m0" bound to lane 0 but Unlock from a thread in lane 1`
		rw2.RLock(wt)   // want `papi\.RWMutex "rw2" bound to lane 2 but RLock from a thread in lane 1`
		rw2.RUnlock(wt) // want `papi\.RWMutex "rw2" bound to lane 2 but RUnlock from a thread in lane 1`
	})

	t.SpawnLane(0, "w0", func(wt papi.T) {
		m0.Lock(wt)
		m0.Unlock(wt)
		wt.Spawn("child", func(ct papi.T) { // children inherit lane 0
			m0.Lock(ct)
			m0.Unlock(ct)
			c1.Broadcast(ct) // want `papi\.Cond "c1" bound to lane 1 but Broadcast from a thread in lane 0`
		})
	})
}

// varLanes is the per-lane setup loop the servers use: objects bound to a
// lane variable are fine in that lane's closures and drift when a closure
// is spawned on a different lane variable.
func varLanes(t papi.T, lanes int) {
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		other := (lane + 1) % lanes
		mu := t.NewMutexLane(lane)
		t.SpawnLane(lane, "same", func(wt papi.T) {
			mu.Lock(wt)
			mu.Unlock(wt)
		})
		t.SpawnLane(other, "drift", func(wt papi.T) {
			if mu.TryLock(wt) { // want `papi\.Mutex "mu" bound to lane variable "lane" but TryLock from a thread in lane variable "other"`
				mu.Unlock(wt) // want `papi\.Mutex "mu" bound to lane variable "lane" but Unlock from a thread in lane variable "other"`
			}
		})
		// Mixed constant/variable comparisons are never definite (lane may
		// be 0 here), so this stays clean.
		t.SpawnLane(0, "maybe", func(wt papi.T) {
			mu.Lock(wt)
			mu.Unlock(wt)
		})
	}
}

// condBinding checks NewCond's implicit binding to the creating thread's
// lane, including struct-field bindings from a composite literal.
type mailbox struct {
	mu   papi.Mutex
	cond papi.Cond
}

func condBinding(t papi.T) {
	var box mailbox
	t.SpawnLane(2, "creator", func(wt papi.T) {
		box = mailbox{
			mu:   wt.NewMutexLane(2),
			cond: wt.NewCond(), // binds to the creating thread's lane (2)
		}
		box.mu.Lock(wt)
		box.cond.Signal(wt)
		box.mu.Unlock(wt)
	})
	t.SpawnLane(1, "poker", func(wt papi.T) {
		box.cond.Signal(wt) // want `papi\.Cond "cond" bound to lane 2 but Signal from a thread in lane 1`
	})
}

// suppressed shows the deliberate-escape annotation: the binding
// declaration line covers every use of the field.
type shared struct {
	//crane:laneconsistency-ok lane 0 drains this during shutdown only, after lane 3 quiesces
	mu papi.Mutex
}

func suppressedUse(t papi.T) {
	var s shared
	s.mu = t.NewMutexLane(3)
	t.SpawnLane(0, "drain", func(wt papi.T) {
		s.mu.Lock(wt) // suppressed via the field-declaration annotation
		s.mu.Unlock(wt)
	})
}

// escaping closures run with unknown lane and are not checked: laneMain is
// invoked both directly and from SpawnLane closures, like the servers'
// bootstrap pattern.
func escaping(t papi.T, lanes int) {
	laneMain := func(lt papi.T, lane int) {
		mu := lt.NewMutexLane(lane)
		mu.Lock(lt)
		mu.Unlock(lt)
	}
	for lane := 1; lane < lanes; lane++ {
		lane := lane
		t.SpawnLane(lane, "main", func(bt papi.T) { laneMain(bt, lane) })
	}
	laneMain(t, 0)
}
