// Package closuresup exercises declaration-line suppression covering
// closures declared within the annotated declaration's span.
//
//crane:replicated
package closuresup

import "time"

// measure returns a probe closure; the annotation on the declaration
// covers the time.Now inside the closure body below, so the harness
// helper needs one reasoned escape, not one per closure line.
//
//crane:nondet-ok harness-side probe, never replicated traffic
func measure() func() int64 {
	return func() int64 {
		return time.Now().UnixNano()
	}
}

// unannotated is the control: same shape, no annotation.
func unannotated() func() int64 {
	return func() int64 {
		return time.Now().UnixNano() // want `time\.Now reads physical time`
	}
}
