// Package suppress holds an intentionally reasonless suppression; the
// framework must reject it and keep the underlying finding alive.
//
//crane:replicated
package suppress

import "time"

// Stamp carries an invalid (reasonless) suppression.
func Stamp() time.Time {
	//crane:nondet-ok
	return time.Now()
}
