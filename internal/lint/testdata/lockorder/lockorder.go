// Package lockorder reproduces the dmt consumed-hook lock-order inversion
// that PR 3's atomic clock mirror worked around: a scheduler invokes a
// registered hook while holding its own mutex, and the hook's owner calls
// back into a scheduler method that takes that mutex while holding its
// own lock. The static analyzer must close the cycle through both the
// hook-field indirection and the setter-parameter indirection.
package lockorder

import "sync"

// Sched stands in for dmt.Scheduler: a logical clock under a mutex and a
// consumed hook fired with the mutex held.
type Sched struct {
	mu       sync.Mutex
	clock    uint64
	consumed func(uint64)
}

// SetConsumedHook stores the hook (the setter-parameter indirection).
func (s *Sched) SetConsumedHook(fn func(uint64)) {
	s.mu.Lock()
	s.consumed = fn
	s.mu.Unlock()
}

// Clock reads the logical clock under the mutex — the call the PR 3
// workaround replaced with an atomic mirror.
func (s *Sched) Clock() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Tick advances the clock and fires the hook under s.mu.
func (s *Sched) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if s.consumed != nil {
		s.consumed(s.clock)
	}
}

// Checker stands in for the observability consumer holding its own lock.
type Checker struct {
	mu   sync.Mutex
	last uint64
}

// Attach registers the callback.
func (c *Checker) Attach(s *Sched) {
	s.SetConsumedHook(c.onConsumed)
}

// onConsumed runs under Sched.mu and takes Checker.mu: one direction.
func (c *Checker) onConsumed(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = v
}

// Snapshot takes Checker.mu and calls back into Sched.Clock, which takes
// Sched.mu: the other direction, closing the cycle.
func (c *Checker) Snapshot(s *Sched) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last + s.Clock() // want `lock-order cycle \(potential deadlock\): lockorder\.Checker\.mu -> lockorder\.Sched\.mu -> lockorder\.Checker\.mu`
}

// ConsistentPair takes two locks in one global order everywhere: no cycle.
type ConsistentPair struct {
	a, b sync.Mutex
	n    int
}

// Both takes a then b.
func (p *ConsistentPair) Both() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}

// BothAgain also takes a then b.
func (p *ConsistentPair) BothAgain() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}
