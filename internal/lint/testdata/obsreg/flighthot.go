// This file exercises the flight-journal half of the obsreg check: in a
// package held to the zero-alloc journaling discipline, the allocating
// Journal.Note path is banned inside loops — the DMT scheduler and the
// sequence layer emit an event per turn, so per-iteration annotations
// would put an allocation on the determinism hot path. Journal.Emit is
// the fixed-arity fast path and stays legal everywhere.
//
//crane:flight-hot
package obsreg

import "crane/internal/obs/flight"

// SetupNote annotates outside any loop: no findings.
func SetupNote(j *flight.Journal) {
	j.Note(flight.EvViewChange, 0, 2, 1, "view=2 primary=1")
}

// LoopEmit journals per iteration through the zero-alloc fast path: no
// findings.
func LoopEmit(j *flight.Journal, n uint64) {
	for i := uint64(0); i < n; i++ {
		j.Emit(flight.EvTick, i, flight.PosUnchanged, i, 0)
	}
}

// LoopNote allocates an annotation per iteration.
func LoopNote(j *flight.Journal, n uint64) {
	for i := uint64(0); i < n; i++ {
		j.Note(flight.EvViewChange, i, i, 0, "per-iteration") // want `Journal\.Note inside a determinism hot loop`
	}
}

// RangeNote allocates per ranged element.
func RangeNote(j *flight.Journal, stamps []uint64) {
	for _, s := range stamps {
		j.Note(flight.EvCheckpoint, s, s, 0, "per-element") // want `Journal\.Note inside a determinism hot loop`
	}
}
