// Package obsreg exercises the nil-registry-safe instrumentation check:
// instruments are created once at setup and observed through nil-safe
// handle methods, never registered on the observation path.
package obsreg

import "crane/internal/obs"

// Worker instruments the right way: handles created once, observed
// everywhere, nil registry degrades to no-ops.
type Worker struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// NewWorker registers instruments at setup: no findings.
func NewWorker(reg *obs.Registry) *Worker {
	return &Worker{
		requests: reg.Counter("worker_requests_total", "requests handled"),
		latency:  reg.Histogram("worker_latency_seconds", "request latency"),
	}
}

// Handle observes through the pre-created handles: no findings.
func (w *Worker) Handle() {
	w.requests.Inc()
}

// ChainedObserve registers the counter on every observation.
func ChainedObserve(reg *obs.Registry) {
	reg.Counter("bad_total", "registered per observation").Inc() // want `Registry\.Counter\(\.\.\.\)\.Inc registers an instrument at observation time`
}

// LoopRegister re-registers a gauge per iteration.
func LoopRegister(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		g := reg.Gauge("bad_depth", "registered in a loop") // want `Registry\.Gauge inside a loop re-registers an instrument per iteration`
		g.Set(int64(i))
	}
}

// RangeRegister re-registers per ranged element.
func RangeRegister(reg *obs.Registry, names []string) {
	for _, name := range names {
		reg.Counter(name, "per-element registration").Inc() // want `Registry\.Counter\(\.\.\.\)\.Inc registers an instrument at observation time`
	}
}
