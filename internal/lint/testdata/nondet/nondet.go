// Package nondet exercises the nondet analyzer: every raw source of
// nondeterminism that must be routed through papi in replicated code.
//
//crane:replicated
package nondet

import (
	"fmt"
	"math/rand" // want `import of math/rand is nondeterministic across replicas`
	"net"       // want `direct net use bypasses the replicated socket layer`
	"sort"
	"sync" // marker import; individual uses are flagged below
	"time"
)

// Server models a replicated server holding raw sync state.
type Server struct {
	mu      sync.Mutex // want `raw sync\.Mutex bypasses the DMT scheduler; use papi\.Mutex via T\.NewMutex`
	counter uint64

	// Annotated escape: the declaration-line suppression below covers
	// every call site on this field as well.
	//crane:nondet-ok snapshot-only state, accessed at quiescent points
	snapMu sync.Mutex
}

// Handle mutates state under a raw lock and spawns raw goroutines.
func (s *Server) Handle() {
	s.mu.Lock() // want `call on raw sync\.Mutex is invisible to the DMT scheduler`
	s.counter++
	s.mu.Unlock() // want `call on raw sync\.Mutex is invisible to the DMT scheduler`

	s.snapMu.Lock() // suppressed via the field-declaration annotation
	s.snapMu.Unlock()

	go s.background() // want `raw go statement creates a thread outside the DMT schedule; use papi\.T\.Spawn`

	ch := make(chan int, 1)
	select { // want `select resolves nondeterministically`
	case v := <-ch:
		_ = v
	default:
	}
}

func (s *Server) background() {}

// Timestamps reads physical time three ways.
func Timestamps() time.Duration {
	t0 := time.Now()               // want `time\.Now reads physical time, which diverges across replicas; use papi\.T\.Now`
	<-time.After(time.Millisecond) // want `time\.After reads physical time`
	return time.Since(t0)          // want `time\.Since reads physical time`
}

// SuppressedTime is a deliberate, annotated escape.
func SuppressedTime() time.Time {
	return time.Now() //crane:nondet-ok harness-side wall clock for log labels only
}

// RandID draws from the raw global PRNG (import already flagged above).
func RandID() int {
	return rand.Intn(100)
}

// DialOut uses the raw network (import already flagged above).
func DialOut() error {
	c, err := net.Dial("tcp", "localhost:80")
	if err != nil {
		return err
	}
	return c.Close()
}

// EmitTable iterates a map and writes entries to output in iteration
// order: the order escapes, diverging across replicas.
func EmitTable(m map[string]int) string {
	out := ""
	for k, v := range m { // want `map iteration order is nondeterministic and escapes this loop`
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}

// SortedTable uses the sorted-keys idiom: allowed.
func SortedTable(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocalOnly keeps iteration effects inside the loop: allowed.
func LocalOnly(m map[string]int) int {
	max := 0
	for _, v := range m {
		local := v * 2
		if local > 0 {
			_ = local
		}
	}
	return max
}
