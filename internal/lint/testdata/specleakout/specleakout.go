// Package specleakout has the same effect calls as the specleak testdata
// but no //crane:specgated marker and an import path that is not
// crane/internal/crane: out of scope, so no findings.
package specleakout

import "crane/internal/simnet"

// DirectWrite is a client harness writing its own request: fine here.
func DirectWrite(c *simnet.Conn, b []byte) {
	c.Write(b)
}
