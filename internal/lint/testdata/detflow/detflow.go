// Package detflow exercises the interprocedural detflow analyzer: the
// nondeterministic value, not its use site, is what gets tracked, and a
// finding fires only where the value crosses a determinism sink.
package detflow

import (
	"fmt"
	"os"
	"sort"
	"time"

	"crane/internal/trace"
)

var out = trace.NewOutputLog("fixture")

// stamp is the source, two hops from the sink.
func stamp() int64 { return time.Now().UnixNano() }

// tag launders the timestamp through formatting: after this hop the value
// is a plain string with no textual tie to package time.
func tag(v int64) string { return fmt.Sprintf("v=%d", v) }

// emit is the sink hop.
func emit(s string) {
	out.Record(1, []byte(s)) // want `nondeterministic value \(time\.Now at [^)]+\) reaches trace\.OutputLog\.Record via detflow\.stamp → detflow\.tag → detflow\.Chain → detflow\.emit`
}

// Chain wires the three hops together.
func Chain() { emit(tag(stamp())) }

// holder carries an environment-derived label through a struct field.
type holder struct{ label string }

// fill taints the field.
func fill(h *holder) { h.label = os.Getenv("CRANE_LABEL") }

// flush sinks the field.
func flush(h *holder) {
	out.Record(2, []byte(h.label)) // want `nondeterministic value \(os\.Getenv at [^)]+\) reaches trace\.OutputLog\.Record`
}

// emitMap writes entries in map iteration order.
func emitMap(m map[string]int) {
	for k := range m {
		out.Record(3, []byte(k)) // want `nondeterministic value \(map iteration order at [^)]+\) reaches trace\.OutputLog\.Record`
	}
}

// emitSorted uses the sorted-keys idiom: the sort erases the iteration
// order, so no finding.
func emitSorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Record(4, []byte(k))
	}
}

// emitClosure launders the timestamp through a captured variable.
func emitClosure() {
	v := time.Now().UnixNano()
	f := func() {
		out.Record(5, []byte(fmt.Sprint(v))) // want `nondeterministic value \(time\.Now at [^)]+\) reaches trace\.OutputLog\.Record`
	}
	f()
}

// emitPtr leaks an address via %p: differs per process, so per replica.
func emitPtr(h *holder) {
	out.Record(6, []byte(fmt.Sprintf("%p", h))) // want `nondeterministic value \(pointer formatting at [^)]+\) reaches trace\.OutputLog\.Record`
}

// emitSuppressed is a deliberate, annotated escape.
func emitSuppressed() {
	out.Record(7, []byte(tag(stamp()))) //crane:detflow-ok harness label, normalizer masks timestamps
}

// localStamp reads time but never crosses a sink: detflow stays silent
// where the pattern matcher would have flagged the call site.
func localStamp() string { return time.Now().String() }
