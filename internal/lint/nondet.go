package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NondetAnalyzer flags raw sources of nondeterminism in replicated
// packages. Every construct it reports is one the LD_PRELOAD interposition
// of the original system would have captured and that therefore MUST be
// routed through internal/papi here: raw goroutines, select, sync
// primitives, physical time, math/rand, escaping map iteration, and
// direct net use.
var NondetAnalyzer = &Analyzer{
	Name: "nondet",
	Doc: "flag nondeterminism that bypasses the papi interposition layer " +
		"in replicated packages",
	Run: runNondet,
}

// syncEquivalent names the papi replacement for each raw sync type.
var syncEquivalent = map[string]string{
	"Mutex":     "papi.Mutex via T.NewMutex",
	"RWMutex":   "papi.RWMutex via T.NewRWMutex",
	"Cond":      "papi.Cond via T.NewCond",
	"WaitGroup": "papi.T.Spawn + T.Join",
	"Once":      "a papi.Mutex-guarded flag",
	"Map":       "a papi.Mutex-guarded map",
}

// timeEquivalent names the papi replacement for each raw time function.
var timeEquivalent = map[string]string{
	"Now":   "papi.T.Now (deterministic logical-clock time)",
	"Since": "papi.T.Now deltas",
	"After": "papi.Listener.Poll deadlines",
}

func runNondet(pass *Pass) {
	if !pass.Replicated {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			switch path {
			case "math/rand", "math/rand/v2":
				pass.Report(imp.Pos(), "import of %s is nondeterministic across replicas; use papi.Rand (deterministic seeded PRNG)", path)
			case "net":
				pass.Report(imp.Pos(), "direct net use bypasses the replicated socket layer; use papi.T.Listen and papi.Conn")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Report(n.Pos(), "raw go statement creates a thread outside the DMT schedule; use papi.T.Spawn")
			case *ast.SelectStmt:
				pass.Report(n.Pos(), "select resolves nondeterministically; replicated code must synchronize through papi.Cond/Mutex")
			case *ast.SelectorExpr:
				nondetSelector(pass, n)
			case *ast.RangeStmt:
				nondetMapRange(pass, file, n)
			}
			return true
		})
	}
}

// nondetSelector flags uses of sync types, sync-type method calls, and
// time.Now/Since/After.
func nondetSelector(pass *Pass, sel *ast.SelectorExpr) {
	// Package-qualified references: sync.Mutex, time.Now, rand.Intn, net.Dial.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			name := sel.Sel.Name
			switch pkg.Imported().Path() {
			case "sync":
				if eq, ok := syncEquivalent[name]; ok {
					pass.Report(sel.Pos(), "raw sync.%s bypasses the DMT scheduler; use %s", name, eq)
				}
			case "time":
				if eq, ok := timeEquivalent[name]; ok {
					pass.Report(sel.Pos(), "time.%s reads physical time, which diverges across replicas; use %s", name, eq)
				}
			}
			return
		}
	}
	// Method calls on values of sync types (m.Lock() where m is a
	// sync.Mutex field): attach the finding to the root field/var so one
	// annotation on its declaration covers every call site.
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return
	}
	if _, tracked := syncEquivalent[named.Obj().Name()]; !tracked {
		return
	}
	pass.ReportObj(sel.Pos(), rootObject(pass, sel.X),
		"call on raw sync.%s is invisible to the DMT scheduler; use %s",
		named.Obj().Name(), syncEquivalent[named.Obj().Name()])
}

// rootObject resolves the field or variable at the base of a selector
// chain (s.stateMu -> the stateMu field object).
func rootObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	case *ast.ParenExpr:
		return rootObject(pass, e.X)
	case *ast.UnaryExpr:
		return rootObject(pass, e.X)
	}
	return nil
}

// nondetMapRange flags ranges over maps whose nondeterministic iteration
// order can escape the loop (writes to outer state, output calls, sends,
// returns). The sorted-keys idiom — the body only appends keys to one
// outer slice that is sorted right after the loop — is recognized and
// allowed.
func nondetMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if sortedKeysIdiom(pass, file, rng) {
		return
	}
	escapes := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := rootObject(pass, lhs); obj != nil && declaredOutside(pass, obj, rng) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			escapes = true
		case *ast.ReturnStmt:
			escapes = true
		case *ast.CallExpr:
			if outputCall(n) {
				escapes = true
			}
		}
		return true
	})
	if escapes {
		pass.Report(rng.Pos(), "map iteration order is nondeterministic and escapes this loop; iterate over sorted keys")
	}
}

func declaredOutside(pass *Pass, obj types.Object, rng *ast.RangeStmt) bool {
	pos := obj.Pos()
	return pos.IsValid() && (pos < rng.Pos() || pos > rng.End())
}

// outputCall reports calls that plausibly externalize data (socket sends,
// buffer/file writes, formatted output).
func outputCall(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	case *ast.Ident:
		name = fn.Name
	default:
		return false
	}
	switch name {
	case "Send", "Write", "WriteString", "WriteByte", "WriteRune",
		"Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println",
		"Encode", "Append", "AppendBatch":
		return true
	}
	return false
}

// sortedKeysIdiom recognizes
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)              // or sort.Slice/slices.Sort*
//
// where the append target is sorted by a statement following the loop in
// the same block.
func sortedKeysIdiom(pass *Pass, file *ast.File, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	target := rootObject(pass, assign.Lhs[0])
	if target == nil {
		return false
	}
	// Look for a later sort call over the same object anywhere in the
	// enclosing function.
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.Info.Uses[pkg].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.HasPrefix(sel.Sel.Name, "Strings") &&
			!strings.HasPrefix(sel.Sel.Name, "Slice") && !strings.HasPrefix(sel.Sel.Name, "Ints") {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == target {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
