package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FsyncErrAnalyzer flags dropped or shadowed errors on durability paths:
// wal.Log Append/AppendBatch/Sync/Truncate/Close, and os.File Sync /
// Close-after-write. A commit that survives only until the page cache is
// not a commit — §5.1's durability argument rests on these errors being
// observed.
var FsyncErrAnalyzer = &Analyzer{
	Name: "fsyncerr",
	Doc:  "flag dropped or shadowed errors on WAL/commit durability paths",
	Run:  runFsyncErr,
}

// durabilityCall reports whether call is a durability operation returning
// an error, with a short label for diagnostics.
func durabilityCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if !returnsError(selection.Obj()) {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	pkg, typ, method := named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name
	switch {
	case pkg == "crane/internal/wal" && typ == "Log":
		switch method {
		case "Append", "AppendBatch", "Sync", "TruncateFrom", "CompactBefore", "Close":
			return "wal.Log." + method, true
		}
	case pkg == "os" && typ == "File":
		switch method {
		case "Sync":
			return "os.File.Sync", true
		case "Close":
			// Close errors only matter after writes: a failed close on a
			// read path loses nothing durable.
			if writesToReceiver(pass, fn, rootObject(pass, sel.X)) {
				return "os.File.Close (write path)", true
			}
		}
	}
	return "", false
}

func returnsError(obj types.Object) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// writesToReceiver reports whether fn also performs a write-like call
// (Write*, Sync, Truncate) on the same file object, marking it a write
// path.
func writesToReceiver(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if fn == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteAt", "Truncate", "Sync":
			if rootObject(pass, sel.X) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func runFsyncErr(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			runFsyncErrFunc(pass, fn)
		}
	}
}

func runFsyncErrFunc(pass *Pass, fn *ast.FuncDecl) {
	// writePositions: positions of identifiers appearing on assignment
	// LHS, used to classify a variable's next use as read vs overwrite.
	writePositions := map[token.Pos]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writePositions[id.Pos()] = true
				}
			}
		}
		return true
	})
	useOf := func(obj types.Object, after token.Pos) (token.Pos, bool /*isWrite*/, bool /*found*/) {
		var positions []token.Pos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= after {
				return true
			}
			if pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj {
				positions = append(positions, id.Pos())
			}
			return true
		})
		if len(positions) == 0 {
			return token.NoPos, false, false
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		return positions[0], writePositions[positions[0]], true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if label, ok := durabilityCall(pass, fn, call); ok {
					pass.Report(n.Pos(), "%s error dropped: a commit that is not durable is not a commit; check the error", label)
				}
			}
		case *ast.DeferStmt:
			if label, ok := durabilityCall(pass, fn, n.Call); ok {
				pass.Report(n.Pos(), "deferred %s drops the error; close/sync explicitly and check the result", label)
			}
		case *ast.AssignStmt:
			for i := range n.Rhs {
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok {
					continue
				}
				label, ok := durabilityCall(pass, fn, call)
				if !ok {
					continue
				}
				// Locate the error-typed LHS (last result by convention;
				// with a single RHS call, LHS aligns with results).
				var errIdent *ast.Ident
				if len(n.Rhs) == 1 {
					if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok {
						errIdent = id
					}
				} else if id, ok := n.Lhs[i].(*ast.Ident); ok {
					errIdent = id
				}
				if errIdent == nil {
					continue
				}
				if errIdent.Name == "_" {
					pass.Report(n.Pos(), "%s error discarded with _; durability failures must be handled", label)
					continue
				}
				obj := pass.Info.Defs[errIdent]
				if obj == nil {
					obj = pass.Info.Uses[errIdent]
				}
				if obj == nil {
					continue
				}
				next, isWrite, found := useOf(obj, n.End())
				if !found {
					pass.Report(n.Pos(), "%s error assigned to %s but never checked", label, errIdent.Name)
				} else if isWrite {
					pos := pass.Fset.Position(next)
					pass.Report(n.Pos(), "%s error in %s is overwritten at line %d before being checked", label, errIdent.Name, pos.Line)
				}
			}
		}
		return true
	})
}
