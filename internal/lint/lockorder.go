package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer is the static companion of the runtime
// internal/analysis.LockOrderChecker: it builds an inter-procedural
// lock-acquisition graph over sync.Mutex/RWMutex fields and papi.Mutex
// values across every loaded package and reports cycles — the potential
// deadlocks the runtime checker can only observe once they are scheduled.
//
// The dmt consumed-hook inversion that PR 3 worked around with an atomic
// clock mirror is exactly this bug class: package A invokes a registered
// hook while holding its own lock, and the hook implementation calls back
// into an A method that takes the same lock from under the registrant's
// lock. Hook calls through func-typed struct fields are therefore resolved
// to every function the codebase stores into that field (directly or via a
// setter parameter).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "report cycles in the static inter-procedural lock-acquisition " +
		"graph over sync and papi mutexes",
	RunSuite: runLockOrder,
}

// lockKind classifies a method call on a lock value.
type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// classifyLockCall reports whether sel is an acquire/release on a tracked
// lock type and returns the lock's identity object.
func classifyLockCall(pass *Pass, sel *ast.SelectorExpr) (lockKind, types.Object) {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return lockNone, nil
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return lockNone, nil
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	isLockType := (pkg == "sync" && (typ == "Mutex" || typ == "RWMutex")) ||
		(pkg == "crane/internal/papi" && (typ == "Mutex" || typ == "RWMutex"))
	if !isLockType {
		return lockNone, nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return lockAcquire, rootObject(pass, sel.X)
	case "Unlock", "RUnlock":
		return lockRelease, rootObject(pass, sel.X)
	}
	return lockNone, nil
}

// funcKey identifies an analyzable function body: a declared function or
// method (by its types.Func) or a function literal (by position).
type funcKey struct {
	obj types.Object
	lit token.Pos
}

type funcBody struct {
	pass *Pass
	body *ast.BlockStmt
	name string
}

// lockEdge records "from held while acquiring to" with a witness position.
type lockEdge struct {
	pos  token.Pos
	pass *Pass
	via  string // call chain note for inter-procedural edges
}

// lockGraph accumulates the universe-wide acquisition graph.
type lockGraph struct {
	passes []*Pass
	funcs  map[funcKey]*funcBody
	// hookTargets maps a func-typed struct field to the functions the
	// codebase stores into it.
	hookTargets map[types.Object][]funcKey
	// setters maps (method, param index) to the hook field that method
	// assigns the parameter into.
	setters map[types.Object]map[int]types.Object

	// summaries: locks a function may acquire, transitively.
	summaries map[funcKey]map[types.Object]bool
	inFlight  map[funcKey]bool

	edges map[types.Object]map[types.Object]lockEdge
	// owner qualifies a lock field with its holder's type name for
	// diagnostics (Scheduler.mu rather than just mu).
	owner map[types.Object]string
}

// classify wraps classifyLockCall, recording the receiver's owning type
// name for readable cycle reports.
func (g *lockGraph) classify(pass *Pass, sel *ast.SelectorExpr) (lockKind, types.Object) {
	kind, lock := classifyLockCall(pass, sel)
	if lock == nil || g.owner[lock] != "" {
		return kind, lock
	}
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[inner.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				g.owner[lock] = named.Obj().Name()
			}
		}
	}
	return kind, lock
}

func runLockOrder(passes []*Pass) {
	g := &lockGraph{
		passes:      passes,
		funcs:       map[funcKey]*funcBody{},
		hookTargets: map[types.Object][]funcKey{},
		setters:     map[types.Object]map[int]types.Object{},
		summaries:   map[funcKey]map[types.Object]bool{},
		inFlight:    map[funcKey]bool{},
		edges:       map[types.Object]map[types.Object]lockEdge{},
		owner:       map[types.Object]string{},
	}
	g.index()
	g.resolveHooks()
	for key := range g.funcs {
		g.analyze(key)
	}
	g.reportCycles()
}

// index collects every function/method/literal body and every direct
// hook-field assignment.
func (g *lockGraph) index() {
	for _, pass := range g.passes {
		pass := pass
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pass.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				key := funcKey{obj: obj}
				g.funcs[key] = &funcBody{pass: pass, body: fd.Body, name: qualifiedFuncName(pass, fd)}
				g.indexSetter(pass, fd, obj)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					key := funcKey{lit: n.Pos()}
					pos := pass.Fset.Position(n.Pos())
					g.funcs[key] = &funcBody{pass: pass, body: n.Body,
						name: fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line)}
				case *ast.AssignStmt:
					g.indexHookAssign(pass, n)
				}
				return true
			})
		}
	}
}

// indexHookAssign records `x.field = <func>` stores into func-typed fields.
func (g *lockGraph) indexHookAssign(pass *Pass, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		field := pass.Info.Uses[sel.Sel]
		if field == nil {
			continue
		}
		if _, isFunc := field.Type().Underlying().(*types.Signature); !isFunc {
			continue
		}
		if target, ok := g.resolveFuncValue(pass, assign.Rhs[i]); ok {
			g.hookTargets[field] = append(g.hookTargets[field], target)
		}
	}
}

// indexSetter detects methods that store a func-typed parameter into a
// struct field (SetObserver/SetConsumedHook patterns), so that arguments
// at their call sites become hook targets.
func (g *lockGraph) indexSetter(pass *Pass, fd *ast.FuncDecl, obj types.Object) {
	if fd.Type.Params == nil {
		return
	}
	paramObjs := map[types.Object]int{}
	idx := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if po := pass.Info.Defs[name]; po != nil {
				if _, isFunc := po.Type().Underlying().(*types.Signature); isFunc {
					paramObjs[po] = idx
				}
			}
			idx++
		}
	}
	if len(paramObjs) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			if i >= len(assign.Rhs) {
				break
			}
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := pass.Info.Uses[sel.Sel]
			rhsID, ok := assign.Rhs[i].(*ast.Ident)
			if !ok || field == nil {
				continue
			}
			if pi, isParam := paramObjs[pass.Info.Uses[rhsID]]; isParam {
				if g.setters[obj] == nil {
					g.setters[obj] = map[int]types.Object{}
				}
				g.setters[obj][pi] = field
			}
		}
		return true
	})
}

// resolveFuncValue resolves an expression to an analyzable function: a
// func literal, a package-level function, or a method value.
func (g *lockGraph) resolveFuncValue(pass *Pass, e ast.Expr) (funcKey, bool) {
	switch e := e.(type) {
	case *ast.FuncLit:
		return funcKey{lit: e.Pos()}, true
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[e].(*types.Func); ok {
			return funcKey{obj: fn}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			return funcKey{obj: sel.Obj()}, true
		}
		if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok {
			return funcKey{obj: fn}, true
		}
	}
	return funcKey{}, false
}

// resolveHooks adds hook targets flowing through setter calls
// (s.SetConsumedHook(fn) -> fn becomes a target of the hooked field).
func (g *lockGraph) resolveHooks() {
	for _, pass := range g.passes {
		pass := pass
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := g.resolveCallee(pass, call)
				if callee.obj == nil {
					return true
				}
				params := g.setters[callee.obj]
				for pi, field := range params {
					if pi < len(call.Args) {
						if target, ok := g.resolveFuncValue(pass, call.Args[pi]); ok {
							g.hookTargets[field] = append(g.hookTargets[field], target)
						}
					}
				}
				return true
			})
		}
	}
}

// resolveCallee resolves a call expression to a single declared
// function/method, a func literal, or — via callTargets — hook-field
// targets.
func (g *lockGraph) resolveCallee(pass *Pass, call *ast.CallExpr) funcKey {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fn].(*types.Func); ok {
			return funcKey{obj: f}
		}
	case *ast.FuncLit:
		return funcKey{lit: fn.Pos()}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			return funcKey{obj: sel.Obj()}
		}
		if f, ok := pass.Info.Uses[fn.Sel].(*types.Func); ok {
			return funcKey{obj: f}
		}
	}
	return funcKey{}
}

// callTargets returns every analyzable body a call may reach: the direct
// callee, or all registered hook targets when calling through a func field.
func (g *lockGraph) callTargets(pass *Pass, call *ast.CallExpr) []funcKey {
	if key := g.resolveCallee(pass, call); key.obj != nil || key.lit.IsValid() {
		return []funcKey{key}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if field := pass.Info.Uses[sel.Sel]; field != nil {
			if targets := g.hookTargets[field]; len(targets) > 0 {
				return targets
			}
		}
	}
	return nil
}

// summarize computes (memoized, cycle-tolerant) the set of locks a
// function may acquire, transitively through resolvable calls.
func (g *lockGraph) summarize(key funcKey) map[types.Object]bool {
	if s, ok := g.summaries[key]; ok {
		return s
	}
	if g.inFlight[key] {
		return nil // recursion: the fixpoint converges on what is known so far
	}
	fb := g.funcs[key]
	if fb == nil {
		return nil
	}
	g.inFlight[key] = true
	acquired := map[types.Object]bool{}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != fb.body.Pos() {
			return false // literals are separate functions
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if kind, lock := g.classify(fb.pass, sel); kind == lockAcquire && lock != nil {
				acquired[lock] = true
				return true
			}
		}
		for _, target := range g.callTargets(fb.pass, call) {
			for l := range g.summarize(target) {
				acquired[l] = true
			}
		}
		return true
	})
	delete(g.inFlight, key)
	g.summaries[key] = acquired
	return acquired
}

// analyze walks one function body in source order, tracking held locks
// and adding edges held->acquired for direct acquisitions and through
// resolvable calls.
func (g *lockGraph) analyze(key funcKey) {
	fb := g.funcs[key]
	var held []types.Object
	release := func(lock types.Object) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == lock {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	addEdge := func(from, to types.Object, pos token.Pos, via string) {
		if from == to {
			return
		}
		m := g.edges[from]
		if m == nil {
			m = map[types.Object]lockEdge{}
			g.edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = lockEdge{pos: pos, pass: fb.pass, via: via}
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return n.Pos() == fb.body.Pos()
			case *ast.DeferStmt:
				// A deferred Unlock keeps the lock held for the rest of
				// the function; other deferred calls are walked normally.
				if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok {
					if kind, _ := g.classify(fb.pass, sel); kind == lockRelease {
						return false
					}
				}
				return true
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					kind, lock := g.classify(fb.pass, sel)
					switch kind {
					case lockAcquire:
						if lock != nil {
							for _, h := range held {
								addEdge(h, lock, n.Pos(), "")
							}
							held = append(held, lock)
						}
						return true
					case lockRelease:
						if lock != nil {
							release(lock)
						}
						return true
					}
				}
				if len(held) > 0 {
					for _, target := range g.callTargets(fb.pass, n) {
						tfb := g.funcs[target]
						for l := range g.summarize(target) {
							for _, h := range held {
								via := ""
								if tfb != nil {
									via = " via call to " + tfb.name
								}
								addEdge(h, l, n.Pos(), via)
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(fb.body)
}

// reportCycles finds strongly connected components in the edge graph and
// reports one witness cycle per component.
func (g *lockGraph) reportCycles() {
	// Deterministic node order.
	var nodes []types.Object
	seen := map[types.Object]bool{}
	add := func(o types.Object) {
		if !seen[o] {
			seen[o] = true
			nodes = append(nodes, o)
		}
	}
	for from, tos := range g.edges {
		add(from)
		for to := range tos {
			add(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return g.lockName(nodes[i]) < g.lockName(nodes[j]) })

	reported := map[types.Object]bool{}
	for _, start := range nodes {
		if reported[start] {
			continue
		}
		// BFS for a path back to start.
		type step struct {
			node types.Object
			path []types.Object
		}
		queue := []step{{start, []types.Object{start}}}
		visited := map[types.Object]bool{start: true}
		var cycle []types.Object
		for len(queue) > 0 && cycle == nil {
			cur := queue[0]
			queue = queue[1:]
			var succs []types.Object
			for to := range g.edges[cur.node] {
				succs = append(succs, to)
			}
			sort.Slice(succs, func(i, j int) bool { return g.lockName(succs[i]) < g.lockName(succs[j]) })
			for _, to := range succs {
				if to == start {
					cycle = append(cur.path, start)
					break
				}
				if !visited[to] {
					visited[to] = true
					queue = append(queue, step{to, append(append([]types.Object{}, cur.path...), to)})
				}
			}
		}
		if cycle == nil {
			continue
		}
		for _, n := range cycle {
			reported[n] = true
		}
		var names []string
		for _, n := range cycle {
			names = append(names, g.lockName(n))
		}
		edge := g.edges[cycle[0]][cycle[1]]
		edge.pass.Report(edge.pos,
			"lock-order cycle (potential deadlock): %s%s", strings.Join(names, " -> "), edge.via)
	}
}

// lockName renders a stable, human-readable lock identity.
func (g *lockGraph) lockName(o types.Object) string {
	if o == nil {
		return "?"
	}
	name := o.Name()
	if owner := g.owner[o]; owner != "" {
		name = owner + "." + name
	}
	if o.Pkg() != nil {
		parts := strings.Split(o.Pkg().Path(), "/")
		name = parts[len(parts)-1] + "." + name
	}
	return name
}

// qualifiedFuncName renders pkg.(Recv).Name for diagnostics.
func qualifiedFuncName(pass *Pass, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		} else if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
	}
	parts := strings.Split(pass.Pkg.Path(), "/")
	return parts[len(parts)-1] + "." + name
}
