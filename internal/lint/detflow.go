package lint

import (
	"strings"
)

// DetflowAnalyzer is the interprocedural companion of nondet: instead of
// flagging a nondeterminism source at its use site, it follows the value
// through assignments, helpers, struct fields, and closures, and reports
// only when the taint reaches a determinism sink — the seq wire, the DMT
// schedule, the speculation output gate, a WAL payload, the output
// fingerprint, or a client socket. That direction kills both failure
// modes of the pattern matcher at once: a timestamp laundered through
// three calls in another package is caught (nondet never sees it), and a
// replica-local time.Now that feeds only a log line stops being a false
// positive (detflow stays silent because no sink is reached).
//
// Suppression: "//crane:detflow-ok <reason>" on the sink line (or the
// line above) silences one finding; the same annotation on the *source*
// line (where the time.Now / rand / map range fires) silences every
// finding that source fans out to — the right tool for a stats timestamp
// that legitimately flows near the wire but is never serialized. The
// reason is mandatory, like every cranevet suppression.
var DetflowAnalyzer = &Analyzer{
	Name: "detflow",
	Doc: "follow nondeterministic values interprocedurally and flag them " +
		"only when they reach a determinism sink (seq wire, DMT schedule, " +
		"output gate, WAL, output log)",
	RunEngine: runDetflow,
}

func runDetflow(eng *Engine, passes []*Pass) {
	for _, f := range eng.sortedFindings() {
		pass := passes[f.pkgIx]
		chain := strings.Join(f.chain, " → ")
		pass.reportRelatedPosition(f.pos, f.srcPos,
			"nondeterministic value (%s at %s) reaches %s via %s; replicas will diverge — route it through papi, or annotate //crane:detflow-ok <reason>",
			f.kind, f.srcPos, f.sink, chain)
	}
}
