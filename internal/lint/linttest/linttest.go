// Package linttest is an analysistest-style harness for cranevet
// analyzers: it type-checks a testdata package, runs analyzers over it,
// and compares the findings against `// want "regexp"` comments placed on
// the offending lines. Each want regexp must match exactly one finding on
// its line, and every finding must be claimed by a want.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crane/internal/lint"
)

// wantRe extracts the patterns from a want comment; each pattern is a Go
// string literal, double- or backtick-quoted.
var wantRe = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type wantKey struct {
	file string
	line int
}

// Run loads the single package in dir and checks analyzers against its
// want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	check(t, []*lint.Package{pkg}, analyzers)
}

// RunDirs loads several testdata directories — dependencies first, each
// under its real module import path so they can import each other — as
// one universe, and checks analyzers against the want comments of every
// package. This is the harness for cross-package fixtures (source in one
// package, launderer in another, sink in a third).
func RunDirs(t *testing.T, dirs, importPaths []string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.LoadDirs(dirs, importPaths)
	if err != nil {
		t.Fatalf("loading %v: %v", dirs, err)
	}
	check(t, pkgs, analyzers)
}

func check(t *testing.T, pkgs []*lint.Package, analyzers []*lint.Analyzer) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pattern, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)

	matched := map[wantKey][]bool{}
	for key := range wants {
		matched[key] = make([]bool, len(wants[key]))
	}
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		claimed := false
		for i, re := range wants[key] {
			if matched[key][i] {
				continue
			}
			if re.MatchString(d.Message) {
				matched[key][i] = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	var missing []string
	for key, flags := range matched {
		for i, ok := range flags {
			if !ok {
				missing = append(missing,
					fmt.Sprintf("%s:%d: no finding matched %q", key.file, key.line, wants[key][i].String()))
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("unmatched want comments:\n%s", strings.Join(missing, "\n"))
	}
}
