package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpecLeakAnalyzer flags externally visible effects that bypass the
// speculation gate. With Config.Speculation on, code in internal/crane
// runs while a speculative window may be open: the server's outputs must
// route through Replica.emitOutput → speculator.emit so an open window
// can buffer them until its commits confirm (ISSUE 7). A direct
// simnet.Conn.Write, trace.OutputLog.Record, or wal.Log append from that
// package leaks a possibly-aborted effect to a client, the cross-replica
// output fingerprint, or the durable log — a leak no rollback can recall.
//
// Scope: the crane/internal/crane package itself, plus any package whose
// files carry a "//crane:specgated" comment (mirrors "//crane:replicated"
// for nondet). The two legitimate sinks below the gate — emitOutput's
// declined-by-speculator path and the flush path — carry
// "//crane:specleak-ok <reason>" suppressions.
var SpecLeakAnalyzer = &Analyzer{
	Name: "specleak",
	Doc:  "flag client-visible effects in internal/crane that bypass the speculation gate buffer",
	Run:  runSpecLeak,
}

// specGated reports whether the pass's package is subject to the
// speculation-gate discipline.
func specGated(pass *Pass) bool {
	if pass.Pkg.Path() == "crane/internal/crane" {
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crane:specgated") {
					return true
				}
			}
		}
	}
	return false
}

// specLeakCall reports whether call is an externally visible effect that
// must not bypass the gate, with a short label for diagnostics.
func specLeakCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	pkg, typ, method := named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name
	switch {
	case pkg == "crane/internal/simnet" && typ == "Conn" && method == "Write":
		return "simnet.Conn.Write", true
	case pkg == "crane/internal/trace" && typ == "OutputLog" && method == "Record":
		return "trace.OutputLog.Record", true
	case pkg == "crane/internal/wal" && typ == "Log":
		switch method {
		case "Append", "AppendBatch":
			return "wal.Log." + method, true
		}
	}
	return "", false
}

func runSpecLeak(pass *Pass) {
	if !specGated(pass) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if label, ok := specLeakCall(pass, call); ok {
				pass.Report(call.Pos(), "%s bypasses the speculation gate: an open window cannot buffer or roll back this effect; route it through Replica.emitOutput, or annotate why no window can be open here", label)
			}
			return true
		})
	}
}
