package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"crane/internal/lint"
	"crane/internal/lint/linttest"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNondet(t *testing.T) {
	linttest.Run(t, testdata(t, "nondet"), lint.NondetAnalyzer)
}

// TestNondetSkipsUnreplicated verifies the replication scoping: the same
// raw constructs in a package that is neither under internal/apps nor
// marked //crane:replicated produce no findings.
func TestNondetSkipsUnreplicated(t *testing.T) {
	linttest.Run(t, testdata(t, "unreplicated"), lint.NondetAnalyzer)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, testdata(t, "lockorder"), lint.LockOrderAnalyzer)
}

func TestFsyncErr(t *testing.T) {
	linttest.Run(t, testdata(t, "fsyncerr"), lint.FsyncErrAnalyzer)
}

func TestObsReg(t *testing.T) {
	linttest.Run(t, testdata(t, "obsreg"), lint.ObsRegAnalyzer)
}

func TestLaneConsistency(t *testing.T) {
	linttest.Run(t, testdata(t, "laneconsistency"), lint.LaneConsistencyAnalyzer)
}

func TestSpecLeak(t *testing.T) {
	linttest.Run(t, testdata(t, "specleak"), lint.SpecLeakAnalyzer)
}

// TestSpecLeakSkipsUngated verifies the scoping: the same effect calls in
// a package that is neither crane/internal/crane nor marked
// //crane:specgated produce no findings.
func TestSpecLeakSkipsUngated(t *testing.T) {
	linttest.Run(t, testdata(t, "specleakout"), lint.SpecLeakAnalyzer)
}

func TestGroncouple(t *testing.T) {
	linttest.Run(t, testdata(t, "groncouple"), lint.GroncoupleAnalyzer)
}

func TestDetflow(t *testing.T) {
	linttest.Run(t, testdata(t, "detflow"), lint.DetflowAnalyzer)
}

// TestDetflowCrossPackage loads the three-package laundering fixture —
// source in a, launderer in b, sink in c — as one universe and checks
// that detflow reports at the sink with the full cross-package chain in
// the message (asserted by the want regexp in c).
func TestDetflowCrossPackage(t *testing.T) {
	dirs := []string{
		testdata(t, "detflowx/a"),
		testdata(t, "detflowx/b"),
		testdata(t, "detflowx/c"),
	}
	paths := []string{
		"crane/internal/lint/testdata/detflowx/a",
		"crane/internal/lint/testdata/detflowx/b",
		"crane/internal/lint/testdata/detflowx/c",
	}
	linttest.RunDirs(t, dirs, paths, lint.DetflowAnalyzer)
}

// TestDetflowBeatsNondet is the acceptance case of ISSUE 9: run nondet
// and detflow over the same laundering fixture and show the pattern
// matcher misses what the taint engine catches. nondet analyzes only the
// replicated package c, which contains no raw nondeterminism construct —
// the time.Now sits two packages away — so it finds nothing; detflow
// follows the value and reports at the sink.
func TestDetflowBeatsNondet(t *testing.T) {
	dirs := []string{
		testdata(t, "detflowx/a"),
		testdata(t, "detflowx/b"),
		testdata(t, "detflowx/c"),
	}
	paths := []string{
		"crane/internal/lint/testdata/detflowx/a",
		"crane/internal/lint/testdata/detflowx/b",
		"crane/internal/lint/testdata/detflowx/c",
	}
	pkgs, err := lint.LoadDirs(dirs, paths)
	if err != nil {
		t.Fatal(err)
	}
	nondet := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.NondetAnalyzer})
	if len(nondet) != 0 {
		t.Errorf("nondet reported %d findings on the laundering fixture, want 0: %v", len(nondet), nondet)
	}
	detflow := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.DetflowAnalyzer})
	if len(detflow) == 0 {
		t.Fatal("detflow reported no findings on the laundering fixture, want the chain at the sink")
	}
	for _, d := range detflow {
		if !strings.Contains(d.Message, "a.Stamp → b.Tag → c.Emit") {
			t.Errorf("finding lacks the full chain: %s", d)
		}
	}
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, testdata(t, "atomicmix"), lint.AtomicMixAnalyzer)
}

// TestClosureSuppression checks that a declaration-line annotation covers
// findings inside closures declared within that declaration's span, and
// only there (the unannotated control still fires, asserted by its want).
func TestClosureSuppression(t *testing.T) {
	linttest.Run(t, testdata(t, "closuresup"), lint.NondetAnalyzer)
}

// TestAnalyzerList pins the suite: a new analyzer must be added here
// deliberately, and cranevet -list output follows this order.
func TestAnalyzerList(t *testing.T) {
	want := []string{"nondet", "lockorder", "fsyncerr", "obsreg",
		"laneconsistency", "specleak", "detflow", "atomicmix", "groncouple"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}

// TestSortDiagnostics pins the deterministic output order: (file, line,
// column, analyzer, message).
func TestSortDiagnostics(t *testing.T) {
	d := func(file string, line, col int, an, msg string) lint.Diagnostic {
		return lint.Diagnostic{
			Analyzer: an,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}
	diags := []lint.Diagnostic{
		d("b.go", 1, 1, "nondet", "z"),
		d("a.go", 9, 1, "nondet", "z"),
		d("a.go", 2, 5, "nondet", "z"),
		d("a.go", 2, 5, "detflow", "z"),
		d("a.go", 2, 5, "detflow", "a"),
		d("a.go", 2, 1, "specleak", "z"),
	}
	lint.SortDiagnostics(diags)
	want := []lint.Diagnostic{
		d("a.go", 2, 1, "specleak", "z"),
		d("a.go", 2, 5, "detflow", "a"),
		d("a.go", 2, 5, "detflow", "z"),
		d("a.go", 2, 5, "nondet", "z"),
		d("a.go", 9, 1, "nondet", "z"),
		d("b.go", 1, 1, "nondet", "z"),
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Errorf("position %d: got %v, want %v", i, diags[i], want[i])
		}
	}
}

// TestFormats checks the three cranevet output formats over one fixed
// finding list: text is the go-vet line format, json is the flat array,
// sarif is a well-formed 2.1.0 log whose rule table covers the whole
// suite in order.
func TestFormats(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Analyzer: "detflow",
			Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
			Message:  "boom",
		},
	}

	var text bytes.Buffer
	if err := lint.WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := text.String(), "x.go:3:7: detflow: boom\n"; got != want {
		t.Errorf("text output %q, want %q", got, want)
	}

	var js bytes.Buffer
	if err := lint.WriteJSON(&js, diags); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(js.Bytes(), &arr); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, js.String())
	}
	if len(arr) != 1 || arr[0]["analyzer"] != "detflow" || arr[0]["line"] != float64(3) {
		t.Errorf("json output off: %s", js.String())
	}

	var sarif bytes.Buffer
	if err := lint.WriteSARIF(&sarif, lint.Analyzers(), diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif.Bytes(), &log); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, sarif.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("sarif skeleton off: %s", sarif.String())
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cranevet" || len(run.Tool.Driver.Rules) != len(lint.Analyzers()) {
		t.Errorf("sarif rule table off: %s", sarif.String())
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "detflow" ||
		run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Errorf("sarif results off: %s", sarif.String())
	}
}

// TestSuppressionRequiresReason checks that a reasonless
// //crane:nondet-ok is rejected and does not silence the finding.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg, err := lint.LoadDir(testdata(t, "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.NondetAnalyzer})
	var reasonless, timeNow bool
	for _, d := range diags {
		if strings.Contains(d.Message, "suppression requires a reason") {
			reasonless = true
		}
		if strings.Contains(d.Message, "time.Now reads physical time") {
			timeNow = true
		}
	}
	if !reasonless {
		t.Errorf("reasonless suppression not reported; got %v", diags)
	}
	if !timeNow {
		t.Errorf("reasonless suppression silenced the finding; got %v", diags)
	}
}

// TestLoadRepo ensures the loader handles the real module, including
// packages that import each other.
func TestLoadRepo(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/papi", "./internal/wal"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s incompletely loaded", p.PkgPath)
		}
	}
}
