package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"crane/internal/lint"
	"crane/internal/lint/linttest"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNondet(t *testing.T) {
	linttest.Run(t, testdata(t, "nondet"), lint.NondetAnalyzer)
}

// TestNondetSkipsUnreplicated verifies the replication scoping: the same
// raw constructs in a package that is neither under internal/apps nor
// marked //crane:replicated produce no findings.
func TestNondetSkipsUnreplicated(t *testing.T) {
	linttest.Run(t, testdata(t, "unreplicated"), lint.NondetAnalyzer)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, testdata(t, "lockorder"), lint.LockOrderAnalyzer)
}

func TestFsyncErr(t *testing.T) {
	linttest.Run(t, testdata(t, "fsyncerr"), lint.FsyncErrAnalyzer)
}

func TestObsReg(t *testing.T) {
	linttest.Run(t, testdata(t, "obsreg"), lint.ObsRegAnalyzer)
}

func TestLaneConsistency(t *testing.T) {
	linttest.Run(t, testdata(t, "laneconsistency"), lint.LaneConsistencyAnalyzer)
}

func TestSpecLeak(t *testing.T) {
	linttest.Run(t, testdata(t, "specleak"), lint.SpecLeakAnalyzer)
}

// TestSpecLeakSkipsUngated verifies the scoping: the same effect calls in
// a package that is neither crane/internal/crane nor marked
// //crane:specgated produce no findings.
func TestSpecLeakSkipsUngated(t *testing.T) {
	linttest.Run(t, testdata(t, "specleakout"), lint.SpecLeakAnalyzer)
}

// TestSuppressionRequiresReason checks that a reasonless
// //crane:nondet-ok is rejected and does not silence the finding.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg, err := lint.LoadDir(testdata(t, "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.NondetAnalyzer})
	var reasonless, timeNow bool
	for _, d := range diags {
		if strings.Contains(d.Message, "suppression requires a reason") {
			reasonless = true
		}
		if strings.Contains(d.Message, "time.Now reads physical time") {
			timeNow = true
		}
	}
	if !reasonless {
		t.Errorf("reasonless suppression not reported; got %v", diags)
	}
	if !timeNow {
		t.Errorf("reasonless suppression silenced the finding; got %v", diags)
	}
}

// TestLoadRepo ensures the loader handles the real module, including
// packages that import each other.
func TestLoadRepo(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/papi", "./internal/wal"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Errorf("package %s incompletely loaded", p.PkgPath)
		}
	}
}
