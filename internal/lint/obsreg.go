package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsRegAnalyzer enforces the nil-registry-safe instrumentation pattern of
// internal/obs: instruments are created once at setup (Registry.Counter /
// Gauge / Histogram / ...) and observed through nil-safe methods on the
// returned handle. Creating an instrument at observation time — chained
// `reg.Counter(...).Inc()` or registration inside a loop — re-enters the
// registry's lock on every observation and silently registers duplicates;
// it defeats the two-atomic-adds hot-path budget the registry is built
// around.
var ObsRegAnalyzer = &Analyzer{
	Name: "obsreg",
	Doc: "flag instrument registration on observation hot paths (chained " +
		"create-and-observe, creation inside loops) and allocating flight-" +
		"journal annotations in determinism hot loops",
	Run: runObsReg,
}

// flightHot reports whether the package is held to the flight recorder's
// zero-alloc journaling discipline: the DMT scheduler and the sequence
// layer emit an event per scheduler turn / consumed call, so the
// allocating Journal.Note path (detail string, annotation entry) is
// banned inside their loops — Journal.Emit is the fixed-arity fast path.
// Other packages opt in with a `crane:flight-hot` marker comment.
func flightHot(pass *Pass) bool {
	switch pass.Pkg.Path() {
	case "crane/internal/dmt", "crane/internal/seq":
		return true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "crane:flight-hot") {
					return true
				}
			}
		}
	}
	return false
}

// journalNote reports whether call invokes flight.Journal.Note.
func journalNote(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Note" {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "crane/internal/obs/flight" {
		return false
	}
	return named.Obj().Name() == "Journal"
}

// registryCreation reports whether call registers a new instrument on
// *obs.Registry.
func registryCreation(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "crane/internal/obs" {
		return "", false
	}
	if named.Obj().Name() != "Registry" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "GaugeFunc", "Histogram", "ValueHistogram":
		return "Registry." + sel.Sel.Name, true
	}
	return "", false
}

func runObsReg(pass *Pass) {
	hot := flightHot(pass)
	for _, file := range pass.Files {
		// loopDepth tracks whether the current node sits inside a loop.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if hot && journalNote(pass, call) {
				for _, anc := range stack[:len(stack)-1] {
					switch anc.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						pass.Report(call.Pos(),
							"Journal.Note inside a determinism hot loop allocates per event; use the fixed-arity Journal.Emit fast path or hoist the annotation out of the loop")
						return true
					}
				}
				return true
			}
			label, ok := registryCreation(pass, call)
			if !ok {
				return true
			}
			// Chained create-and-observe: the creation is the receiver of
			// an immediately invoked method (parent chain is
			// SelectorExpr -> CallExpr).
			if len(stack) >= 3 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == call {
					if outer, ok := stack[len(stack)-3].(*ast.CallExpr); ok && outer.Fun == sel {
						pass.Report(call.Pos(),
							"%s(...).%s registers an instrument at observation time; create the instrument once at setup and reuse the handle (nil-safe)",
							label, sel.Sel.Name)
						return true
					}
				}
			}
			for _, anc := range stack[:len(stack)-1] {
				switch anc.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					pass.Report(call.Pos(),
						"%s inside a loop re-registers an instrument per iteration; hoist creation out of the loop", label)
					return true
				}
			}
			return true
		})
	}
}
