package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// AtomicMixAnalyzer machine-checks the lock-free mirror discipline the PR 5
// scheduler fast path introduced: a word that is published with sync/atomic
// must be observed with sync/atomic everywhere, and vice versa. A field
// that is atomic.Add'ed on the hot path but read with a plain load on the
// scrape path is a data race the race detector only catches if the exact
// interleaving fires; statically the mix is visible on every run.
//
// The analyzer walks the whole loaded universe (suite-wide, because the
// publisher and the observer are routinely in different packages), collects
// every field or package-level variable that is passed by address to a
// sync/atomic function, then flags:
//
//   - plain reads of a word that has atomic writes ("publish without the
//     observer's acquire"), and
//   - plain writes to a word that has atomic reads ("observe without the
//     publisher's release").
//
// Constructor-time plain stores are exempt: before the value escapes the
// constructor there is no concurrent observer, and that is the one idiom
// (s := &S{}; s.n = 0; return s) that is both safe and ubiquitous. The
// heuristic is "a function in the same package whose name starts with New,
// Open, or make"; anything subtler carries a //crane:atomicmix-ok reason.
//
// Fields of the modern typed atomics (atomic.Uint64 and friends) cannot be
// mixed by construction — this analyzer exists for the address-based API,
// which is what code migrating onto the mirror discipline still uses.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "flag words accessed both through sync/atomic and with plain " +
		"loads/stores, and publish/observe pairs missing a counterpart",
	RunSuite: runAtomicMix,
}

// atomicAccess records how one word is touched across the suite.
type atomicAccess struct {
	obj         types.Object
	name        string
	atomicLoad  bool
	atomicStore bool
	declPos     token.Pos
	declPass    *Pass
}

// plainAccess is one non-atomic use of an atomically-accessed word.
type plainAccess struct {
	pass    *Pass
	pos     token.Pos
	isWrite bool
}

// atomicFuncKind classifies a sync/atomic package function by name as a
// bitmask: bit 1 = observes (load), bit 2 = publishes (store). RMW ops
// (Add/Swap/CompareAndSwap/And/Or) do both.
func atomicFuncKind(name string) int {
	switch {
	case strings.HasPrefix(name, "Load"):
		return 1
	case strings.HasPrefix(name, "Store"):
		return 2
	case strings.HasPrefix(name, "Add"),
		strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"),
		strings.HasPrefix(name, "And"),
		strings.HasPrefix(name, "Or"):
		return 3
	}
	return 0
}

func runAtomicMix(passes []*Pass) {
	// Pass 1: every word passed by address to sync/atomic.
	words := map[string]*atomicAccess{}
	atomicArgs := map[ast.Expr]bool{} // the &x operands of atomic calls, skipped in pass 2
	for _, pass := range passes {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgID, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
				if !ok || pn.Imported().Path() != "sync/atomic" {
					return true
				}
				kind := atomicFuncKind(sel.Sel.Name)
				if kind == 0 || len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				obj := rootObjOf(pass.Info, addr.X)
				if obj == nil {
					return true
				}
				key := wordKey(pass, obj)
				if key == "" {
					return true
				}
				w := words[key]
				if w == nil {
					w = &atomicAccess{obj: obj, name: wordName(pass, addr.X), declPos: obj.Pos(), declPass: pass}
					words[key] = w
				}
				if kind&1 != 0 {
					w.atomicLoad = true
				}
				if kind&2 != 0 {
					w.atomicStore = true
				}
				atomicArgs[addr.X] = true
				return true
			})
		}
	}
	if len(words) == 0 {
		return
	}

	// Pass 2: plain accesses of those words.
	plains := map[string][]plainAccess{}
	for _, pass := range passes {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ctor := isConstructorName(fd.Name.Name)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						for _, lhs := range n.Lhs {
							if key, ok := wordUse(pass, lhs, atomicArgs, words); ok {
								if !ctor {
									plains[key] = append(plains[key], plainAccess{pass, lhs.Pos(), true})
								}
							}
						}
					case *ast.IncDecStmt:
						if key, ok := wordUse(pass, n.X, atomicArgs, words); ok {
							if !ctor {
								plains[key] = append(plains[key], plainAccess{pass, n.X.Pos(), true})
							}
						}
					}
					return true
				})
				// Reads: any use of the word that is not an lvalue of an
				// assignment, not the &x of an atomic call, and not a
				// plain write found above.
				collectWordReads(pass, fd, ctor, atomicArgs, words, plains)
			}
		}
	}

	keys := make([]string, 0, len(words))
	for k := range words {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		w := words[key]
		for _, p := range plains[key] {
			switch {
			case p.isWrite:
				// Any atomic access at all makes a plain write racy: the
				// atomic side may run concurrently with this store.
				p.pass.ReportObj(p.pos, w.obj,
					"%s is accessed with sync/atomic elsewhere but published here with a plain write (missing release); use the atomic store, or annotate //crane:atomicmix-ok <reason>",
					w.name)
			case !p.isWrite && w.atomicStore:
				p.pass.ReportObj(p.pos, w.obj,
					"%s is published with sync/atomic but observed here with a plain read (missing acquire); use the atomic load, or annotate //crane:atomicmix-ok <reason>",
					w.name)
			}
		}
	}
}

// wordKey identifies a field or package-level var suite-wide; locals are
// keyed by position (they can legitimately be atomic when their address
// escapes to a goroutine).
func wordKey(pass *Pass, obj types.Object) string {
	if key := objKey(pass.Fset, obj); key != "" {
		return key
	}
	if v, ok := obj.(*types.Var); ok && v.Pos().IsValid() {
		return "local." + v.Name() + "." + strconv.Itoa(int(v.Pos()))
	}
	return ""
}

// wordName renders the access expression for diagnostics ("s.clock").
func wordName(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return wordName(pass, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return wordName(pass, e.X) + "[...]"
	}
	return "word"
}

// wordUse reports whether e resolves to an atomically-accessed word and is
// not itself the &x argument of an atomic call.
func wordUse(pass *Pass, e ast.Expr, atomicArgs map[ast.Expr]bool, words map[string]*atomicAccess) (string, bool) {
	e = ast.Unparen(e)
	if atomicArgs[e] {
		return "", false
	}
	obj := rootObjOf(pass.Info, e)
	if obj == nil {
		return "", false
	}
	key := wordKey(pass, obj)
	if key == "" {
		return "", false
	}
	if _, tracked := words[key]; !tracked {
		return "", false
	}
	// The base must actually select the word, not merely start from the
	// same struct: s.clock yes, s.other no — rootObjOf already resolves
	// to the field object, so tracked means selected.
	return key, true
}

// collectWordReads flags reads: identifier/selector uses of tracked words
// outside write position, address-taking for atomic calls, and ctors.
func collectWordReads(pass *Pass, fd *ast.FuncDecl, ctor bool, atomicArgs map[ast.Expr]bool, words map[string]*atomicAccess, plains map[string][]plainAccess) {
	if ctor {
		return
	}
	// Mark expressions that are write targets or atomic args so the read
	// walk skips them.
	skip := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				skip[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			skip[ast.Unparen(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Any address-taking: &s.clock handed to an atomic call is
				// the atomic access itself; &s.clock handed elsewhere is
				// indistinguishable from a plain alias, but flagging every
				// alias is noise — skip all & uses.
				skip[ast.Unparen(n.X)] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if skip[e] || atomicArgs[e] {
			// Don't descend: the Sel identifier of a skipped selector
			// still resolves to the field object and would double-report.
			return false
		}
		// Only direct selections of the word count as reads of it.
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if s, ok := pass.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				return true
			}
		}
		obj := rootObjOf(pass.Info, e)
		if obj == nil {
			return true
		}
		key := wordKey(pass, obj)
		if key == "" {
			return true
		}
		if _, tracked := words[key]; !tracked {
			return true
		}
		plains[key] = append(plains[key], plainAccess{pass, e.Pos(), false})
		return false // don't descend into X and double-count
	})
}

// isConstructorName reports the constructor exemption heuristic.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Open") || strings.HasPrefix(name, "make") ||
		strings.HasPrefix(name, "Make")
}
