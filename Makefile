GO ?= go

# Third-party analysis tools, pinned so CI and local runs agree.
# staticcheck 2024.1.x is the newest series supporting go.mod's go 1.22.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test race lint staticcheck govulncheck check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own full cranevet suite (internal/lint): raw
# nondeterminism in replicated code, lock-order cycles, dropped
# durability errors, observation-path instrument registration, lane
# consistency, speculation-gate leaks, interprocedural nondeterminism
# taint (detflow), and atomic/plain access mixes (atomicmix). Violations
# exit non-zero; suppress intentionally with //crane:<analyzer>-ok
# <reason>. Use `go run ./cmd/cranevet -format=sarif ./...` for
# code-scanning output.
lint:
	$(GO) run ./cmd/cranevet ./...

# staticcheck and govulncheck fetch their pinned versions on first use,
# so they need network access; CI runs them as separate jobs.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

check: build test lint
