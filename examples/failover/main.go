// Command failover demonstrates CRANE's fault tolerance (§7.6): a
// three-replica cluster serves a replicated key-value store, the primary
// machine is killed, the remaining replicas elect a new leader with the
// paper's three-step election, and clients keep reading the state written
// before the failure. A backup checkpoint then rebuilds the failed
// replica.
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/checkpoint"
	"crane/internal/client"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// kv is the replicated store (listener + worker pool, SET/GET protocol).
type kv struct {
	workers int
	mu      sync.Mutex
	data    map[string]string
}

func (s *kv) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.data)
	return buf.Bytes(), err
}

func (s *kv) Restore(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&s.data)
}

func (s *kv) Run(t papi.T) {
	l, err := t.Listen(9100)
	if err != nil {
		return
	}
	var (
		wl      []papi.Conn
		wlMu    = t.NewMutex()
		wlCv    = t.NewCond()
		stateMu = t.NewMutex()
	)
	for i := 0; i < s.workers; i++ {
		t.Spawn(fmt.Sprintf("w%d", i), func(wt papi.T) {
			for !wt.Killed() {
				wlMu.Lock(wt)
				for len(wl) == 0 {
					wlCv.Wait(wt, wlMu)
				}
				c := wl[0]
				wl = wl[1:]
				wlMu.Unlock(wt)
				s.serve(wt, c, stateMu)
			}
		})
	}
	for !t.Killed() {
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		wlMu.Lock(t)
		wl = append(wl, c)
		wlMu.Unlock(t)
		wlCv.Signal(t)
	}
}

func (s *kv) serve(t papi.T, c papi.Conn, stateMu papi.Mutex) {
	defer c.Close(t)
	buf := make([]byte, 256)
	var acc []byte
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		parts := strings.SplitN(strings.TrimSpace(string(acc[:i])), " ", 3)
		acc = acc[i+1:]
		var resp string
		stateMu.Lock(t)
		s.mu.Lock()
		switch parts[0] {
		case "SET":
			if len(parts) == 3 {
				s.data[parts[1]] = parts[2]
				resp = "OK\n"
			} else {
				resp = "ERR\n"
			}
		case "GET":
			if v, ok := s.data[parts[1]]; ok {
				resp = "VALUE " + v + "\n"
			} else {
				resp = "NONE\n"
			}
		default:
			resp = "ERR\n"
		}
		s.mu.Unlock()
		stateMu.Unlock(t)
		if _, err := c.Send(t, []byte(resp)); err != nil {
			return
		}
	}
}

func main() {
	prog := papi.Program{
		Name:  "kv",
		Ports: []int{9100},
		New: func(fs *cfs.FS) papi.Instance {
			return &kv{workers: 8, data: make(map[string]string)}
		},
	}
	cluster, err := crane.StartCluster(crane.Config{
		Mode:       crane.ModeCrane,
		Replicas:   3,
		NetOptions: simnet.Options{Latency: 50 * time.Microsecond},
		// Scaled-down failure detection (the paper uses 1s heartbeats and
		// a 3s election timeout).
		HeartbeatInterval: 20 * time.Millisecond,
		ElectionTimeout:   100 * time.Millisecond,
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	fmt.Println("writing 5 keys to the primary")
	for i := 0; i < 5; i++ {
		req := fmt.Sprintf("SET key%d value%d\n", i, i)
		if _, err := cluster.DialAndRequest(fmt.Sprintf("writer%d:1", i), 9100, []byte(req), 3); err != nil {
			log.Fatal(err)
		}
	}
	if err := cluster.WaitQuiescent(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// Checkpoint a backup before the failure (§5.2: every minute on one
	// backup; here on demand).
	cp := checkpoint.New(checkpoint.Options{Backoff: time.Millisecond})
	ck, tm, err := cluster.CheckpointBackup(cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup checkpoint at global index %d (process %.2fms, fs %.2fms, %dB patch)\n",
		ck.Index, float64(tm.CheckpointProcess.Microseconds())/1000,
		float64(tm.CheckpointFS.Microseconds())/1000, tm.FSPatchBytes)

	old, err := cluster.FailPrimary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killed primary replica%d; waiting for election...\n", old)
	start := time.Now()
	p, err := cluster.Primary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica%d elected primary after %v (election phase %.2fms)\n",
		p.ID(), time.Since(start).Round(time.Millisecond), p.Node().LastElectionMillis())

	// Clients do not get to ask the cluster who the primary is: the
	// failover-aware client library discovers it by probing replicas.
	cl, err := client.New(client.Config{
		Net:   cluster.Net(),
		Hosts: []string{"replica0", "replica1", "replica2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		req := fmt.Sprintf("GET key%d\n", i)
		resp, err := cl.Request(9100, []byte(req), client.UntilLine())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  GET key%d -> %s", i, resp)
	}

	// Rebuild the failed replica from the shipped checkpoint.
	wire, err := ck.Encode()
	if err != nil {
		log.Fatal(err)
	}
	shipped, err := checkpoint.Decode(wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.RestoreReplica(old, shipped); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica%d rebuilt from checkpoint (index %d) and re-joined as a backup\n",
		old, shipped.Index)
	time.Sleep(200 * time.Millisecond)
	if cluster.Replica(old).IsPrimary() {
		fmt.Println("unexpected: restored replica claims primaryship")
	} else {
		fmt.Println("restored replica correctly follows the new primary")
	}
}
