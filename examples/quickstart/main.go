// Command quickstart is the smallest end-to-end CRANE deployment: a tiny
// multithreaded counter server written against the papi interface is
// replicated across three replicas with full CRANE (Paxos + DMT + time
// bubbling), a few clients talk to the primary, and the replicas' network
// output logs are diffed to show they stayed in sync.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"crane/internal/cfs"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
	"crane/internal/trace"
)

// counter is a multithreaded network counter: "INC", "GET" line protocol,
// a listener thread, and a worker pool synchronized with a mutex/cond
// worklist — the same shape as the paper's Fig. 2 example.
type counter struct {
	workers int
	mu      sync.Mutex
	value   int
}

func (s *counter) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s.value)
	return buf.Bytes(), err
}

func (s *counter) Restore(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(&s.value)
}

func (s *counter) Run(t papi.T) {
	l, err := t.Listen(9000)
	if err != nil {
		return
	}
	var (
		worklist []papi.Conn
		wlMu     = t.NewMutex()
		wlCv     = t.NewCond()
		stateMu  = t.NewMutex()
	)
	for i := 0; i < s.workers; i++ {
		t.Spawn(fmt.Sprintf("worker%d", i), func(wt papi.T) {
			for !wt.Killed() {
				wlMu.Lock(wt)
				for len(worklist) == 0 {
					wlCv.Wait(wt, wlMu)
				}
				c := worklist[0]
				worklist = worklist[1:]
				wlMu.Unlock(wt)
				s.serve(wt, c, stateMu)
			}
		})
	}
	for !t.Killed() {
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		wlMu.Lock(t)
		worklist = append(worklist, c)
		wlMu.Unlock(t)
		wlCv.Signal(t)
	}
}

func (s *counter) serve(t papi.T, c papi.Conn, stateMu papi.Mutex) {
	defer c.Close(t)
	buf := make([]byte, 128)
	var acc []byte
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		cmd := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		var resp string
		stateMu.Lock(t)
		s.mu.Lock()
		switch cmd {
		case "INC":
			s.value++
			resp = fmt.Sprintf("OK %d\n", s.value)
		case "GET":
			resp = fmt.Sprintf("VALUE %d\n", s.value)
		default:
			resp = "ERR\n"
		}
		s.mu.Unlock()
		stateMu.Unlock(t)
		if _, err := c.Send(t, []byte(resp)); err != nil {
			return
		}
	}
}

func main() {
	prog := papi.Program{
		Name:  "counter",
		Ports: []int{9000},
		New: func(fs *cfs.FS) papi.Instance {
			return &counter{workers: 8}
		},
	}
	cluster, err := crane.StartCluster(crane.Config{
		Mode:     crane.ModeCrane,
		Replicas: 3,
		NetOptions: simnet.Options{
			Latency: 50 * time.Microsecond,
			Jitter:  100 * time.Microsecond,
		},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	fmt.Println("three-replica CRANE cluster up; sending 10 INCs and a GET")
	for i := 0; i < 10; i++ {
		resp, err := cluster.DialAndRequest(fmt.Sprintf("client%d:1", i), 9000, []byte("INC\n"), 3)
		if err != nil {
			log.Fatalf("INC: %v", err)
		}
		fmt.Printf("  INC -> %s", resp)
	}
	resp, err := cluster.DialAndRequest("reader:1", 9000, []byte("GET\n"), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GET -> %s", resp)

	if err := cluster.WaitQuiescent(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	logs := cluster.OutputLogs()
	if divs := trace.DiffAll(logs); len(divs) == 0 {
		fmt.Printf("all %d replicas produced identical network outputs (%d each)\n",
			len(logs), logs[0].Len())
	} else {
		fmt.Println("DIVERGENCE:", divs)
	}
	st := cluster.SeqStats()
	fmt.Printf("consensus requests: %d client socket calls, %d time bubbles (ratio %.2f%%)\n",
		st.ClientCalls, st.Bubbles, 100*st.BubbleRatio())
}
