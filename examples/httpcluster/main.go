// Command httpcluster replicates the Apache-like HTTP server with full
// CRANE and reproduces the paper's §7.2 micro-benchmark: two concurrent
// curl clients race a PUT and a GET of the same PHP page. Within one run
// every replica must agree on the outcome (200 OK or 404 Not Found,
// depending on which request the primary's proxy saw first); across runs
// either outcome may appear — that is the admissible nondeterminism CRANE
// makes consistent, not impossible.
//
//	go run ./examples/httpcluster
package main

import (
	"fmt"
	"log"
	"regexp"
	"sync"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/httpd"
	"crane/internal/apps/httpkit"
	"crane/internal/crane"
	"crane/internal/simnet"
	"crane/internal/trace"
)

func main() {
	cfg := httpd.DefaultConfig()
	cfg.PHPChunks = 6
	cfg.PHPChunkWork = 40
	cluster, err := crane.StartCluster(crane.Config{
		Mode:     crane.ModeCrane,
		Replicas: 3,
		NetOptions: simnet.Options{
			Latency: 50 * time.Microsecond,
			Jitter:  150 * time.Microsecond,
		},
	}, httpd.Program(cfg))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	// Replica output logs only differ in physical-time Date headers
	// (§7.2's carve-out); mask them before diffing.
	re := regexp.MustCompile(httpkit.DateHeaderPattern)
	for i := 0; i < cluster.Replicas(); i++ {
		cluster.Replica(i).Outputs().SetNormalizer(re)
	}
	dial := cluster.Dial

	fmt.Println("warm-up: GET /index.html")
	status, body, err := clients.Curl(dial, "warm:1", 8080, "GET", "/index.html", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %d (%d bytes)\n", status, len(body))

	fmt.Println("racing concurrent PUT and GET of /a.php, 10 rounds:")
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		var getStatus int
		wg.Add(2)
		go func() {
			defer wg.Done()
			clients.Curl(dial, fmt.Sprintf("putter%d:1", round), 8080,
				"PUT", "/a.php", []byte("<?php page ?>"))
		}()
		go func() {
			defer wg.Done()
			getStatus, _, _ = clients.Curl(dial, fmt.Sprintf("getter%d:1", round), 8080,
				"GET", "/a.php", nil)
		}()
		wg.Wait()
		fmt.Printf("  round %2d: GET -> %d\n", round, getStatus)
		// Reset for the next round.
		clients.Curl(dial, fmt.Sprintf("cleaner%d:1", round), 8080, "DELETE", "/a.php", nil)
	}

	if err := cluster.WaitQuiescent(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	logs := cluster.OutputLogs()
	if divs := trace.DiffAll(logs); len(divs) == 0 {
		fmt.Printf("replica outputs identical across all %d replicas (%d outputs each)\n",
			len(logs), logs[0].Len())
	} else {
		fmt.Println("DIVERGENCE:", divs)
	}
}
