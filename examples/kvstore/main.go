// Command kvstore runs the same replicated MySQL-like database under the
// four execution modes of Figure 14 (un-replicated nondeterministic,
// Parrot-only, Paxos-only, full CRANE) and prints each mode's median
// response time for a SysBench-style point-SELECT workload — a miniature,
// single-program version of the paper's performance comparison.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"crane/internal/apps/clients"
	"crane/internal/apps/mysqld"
	"crane/internal/crane"
	"crane/internal/simnet"
)

func main() {
	const (
		rows    = 40
		queries = 60
		conc    = 4
	)
	fmt.Printf("%-14s %12s %12s %10s\n", "mode", "median", "p90", "errors")
	var baseline time.Duration
	for _, mode := range []crane.Mode{
		crane.ModeNondet, crane.ModeParrotOnly, crane.ModePaxosOnly, crane.ModeCrane,
	} {
		cfg := mysqld.DefaultConfig()
		cfg.Workers = 8
		cluster, err := crane.StartCluster(crane.Config{
			Mode:     mode,
			Replicas: 3,
			NetOptions: simnet.Options{
				Latency: 30 * time.Microsecond,
				Jitter:  60 * time.Microsecond,
			},
		}, mysqld.Program(cfg))
		if err != nil {
			log.Fatal(err)
		}
		if err := clients.SysBenchPrepare(cluster.Dial, "prep:1", 3306, rows); err != nil {
			cluster.Stop()
			log.Fatalf("%v: prepare: %v", mode, err)
		}
		sum := clients.SysBench(cluster.Dial, 3306, rows, conc, queries)
		cluster.Stop()
		if mode == crane.ModeNondet {
			baseline = sum.Median
		}
		rel := ""
		if baseline > 0 && mode != crane.ModeNondet {
			rel = fmt.Sprintf("  (%.0f%% of baseline)", 100*float64(sum.Median)/float64(baseline))
		}
		fmt.Printf("%-14s %12v %12v %10d%s\n", mode, sum.Median.Round(time.Microsecond),
			sum.P90.Round(time.Microsecond), sum.Errors, rel)
	}
}
