// Command analysis demonstrates the REPFRAME application of the paper's
// §6.2: because every CRANE replica executes the same deterministic
// schedule, a dynamic analysis can run on a *backup* replica and observe
// exactly the execution the primary served — at zero cost to the primary.
//
// The replicated server here deliberately acquires two locks in opposite
// orders on different request types; the lock-order checker attached to a
// backup flags the potential deadlock while clients are served normally.
//
// The same transparency extends to request lifecycles: with a trace
// capacity configured, every admitted socket call carries a request id
// from proxy admission through consensus, DMT turn, and output, and the
// retained spans dump as JSONL for offline analysis (each line carries
// both a wall-clock and a logical DMT-clock timestamp, so physical
// stalls and logical scheduling stalls separate cleanly).
//
//	go run ./examples/analysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crane/internal/cfs"
	"crane/internal/crane"
	"crane/internal/papi"
	"crane/internal/simnet"
)

// riskyServer has a classic lock-order bug: "AB" requests take lock A then
// B, "BA" requests take B then A. Under deterministic scheduling it never
// actually deadlocks in this run — which is exactly why a detector that
// sees the acquisition graph (not just hangs) is valuable.
type riskyServer struct{ workers int }

func (s *riskyServer) Snapshot() ([]byte, error) { return nil, nil }
func (s *riskyServer) Restore([]byte) error      { return nil }

func (s *riskyServer) Run(t papi.T) {
	l, err := t.Listen(9200)
	if err != nil {
		return
	}
	var (
		wl    []papi.Conn
		wlMu  = t.NewMutex()
		wlCv  = t.NewCond()
		lockA = t.NewMutex()
		lockB = t.NewMutex()
	)
	for i := 0; i < s.workers; i++ {
		t.Spawn(fmt.Sprintf("w%d", i), func(wt papi.T) {
			for !wt.Killed() {
				wlMu.Lock(wt)
				for len(wl) == 0 {
					wlCv.Wait(wt, wlMu)
				}
				c := wl[0]
				wl = wl[1:]
				wlMu.Unlock(wt)
				s.serve(wt, c, lockA, lockB)
			}
		})
	}
	for !t.Killed() {
		c, err := l.Accept(t)
		if err != nil {
			return
		}
		wlMu.Lock(t)
		wl = append(wl, c)
		wlMu.Unlock(t)
		wlCv.Signal(t)
	}
}

func (s *riskyServer) serve(t papi.T, c papi.Conn, lockA, lockB papi.Mutex) {
	defer c.Close(t)
	buf := make([]byte, 64)
	var acc []byte
	for {
		i := bytes.IndexByte(acc, '\n')
		for i < 0 {
			n, err := c.Recv(t, buf)
			if err != nil {
				return
			}
			acc = append(acc, buf[:n]...)
			i = bytes.IndexByte(acc, '\n')
		}
		cmd := strings.TrimSpace(string(acc[:i]))
		acc = acc[i+1:]
		switch cmd {
		case "AB":
			lockA.Lock(t)
			lockB.Lock(t) //crane:lockorder-ok deliberate AB/BA inversion: this example exists to feed the deadlock analysis a latent cycle
			t.Work(50)
			lockB.Unlock(t)
			lockA.Unlock(t)
		case "BA": // inverted order: the latent deadlock
			lockB.Lock(t)
			lockA.Lock(t)
			t.Work(50)
			lockA.Unlock(t)
			lockB.Unlock(t)
		}
		if _, err := c.Send(t, []byte("DONE\n")); err != nil {
			return
		}
	}
}

func main() {
	prog := papi.Program{
		Name:  "risky",
		Ports: []int{9200},
		New: func(fs *cfs.FS) papi.Instance {
			return &riskyServer{workers: 4}
		},
	}
	cluster, err := crane.StartCluster(crane.Config{
		Mode:          crane.ModeCrane,
		Replicas:      3,
		AnalyzeBackup: true,
		TraceCapacity: 1 << 14,
		NetOptions:    simnet.Options{Latency: 40 * time.Microsecond},
	}, prog)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	for i, cmd := range []string{"AB", "BA", "AB", "BA"} {
		resp, err := cluster.DialAndRequest(fmt.Sprintf("cli%d:1", i), 9200,
			[]byte(cmd+"\n"), 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %s -> %s", cmd, resp)
	}

	chk := cluster.Analysis()
	if chk == nil {
		log.Fatal("no analysis attached")
	}
	fmt.Printf("backup analysis observed %d synchronization events over %d locks\n",
		chk.Events(), chk.LockCount())
	invs := chk.Inversions()
	if len(invs) == 0 {
		fmt.Println("no lock-order inversions found (unexpected for this server!)")
		return
	}
	fmt.Println("lock-order inversions detected on the backup replica:")
	for _, iv := range invs {
		fmt.Println("  -", iv)
	}
	fmt.Println("(the primary served all requests; the analysis ran for free on a backup)")

	dumpLifecycle(cluster)
}

// dumpLifecycle writes the primary's retained lifecycle spans as JSONL
// and prints the per-stage latency table they aggregate into.
func dumpLifecycle(cluster *crane.Cluster) {
	primary, err := cluster.Primary()
	if err != nil {
		log.Fatal(err)
	}
	tr := primary.Tracer()
	out := filepath.Join(os.TempDir(), "crane-trace.jsonl")
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d lifecycle spans dumped to %s\n", tr.Len(), out)
	fmt.Println("per-stage breakdown (wall-clock and logical DMT-clock deltas):")
	for _, row := range tr.Breakdown() {
		fmt.Println("  ", row)
	}
}
