// Package crane_test holds the paper-evaluation benchmarks: one benchmark
// per table and figure of §7 (see DESIGN.md's experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
//	go test -bench=Figure14 -benchtime=1x .
//	go test -bench=. -benchtime=1x .        # everything
//
// Each benchmark iteration runs the complete experiment cell (cluster
// deployment + workload) and reports medians as custom metrics, so
// -benchtime=1x is the intended mode; larger -benchtime repeats whole
// experiments.
package crane_test

import (
	"fmt"
	"testing"
	"time"

	"crane/internal/bench"
	icrane "crane/internal/crane"
)

// benchScale keeps `go test -bench=.` affordable; crane-bench -full runs
// the larger version.
var benchScale = bench.Scale{Requests: 12, Concurrency: 4, PrepareRows: 30}

func reportMedian(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(float64(d.Microseconds()), name+"-µs")
}

// BenchmarkFigure14 regenerates Figure 14: per-server response time under
// parrot-only, paxos-only, and full CRANE, normalized to the un-replicated
// nondeterministic baseline.
func BenchmarkFigure14(b *testing.B) {
	for _, spec := range bench.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := bench.RunCell(spec, bench.ClusterConfig(icrane.ModeNondet), false, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				for _, mode := range []icrane.Mode{icrane.ModeParrotOnly, icrane.ModePaxosOnly, icrane.ModeCrane} {
					cell, err := bench.RunCell(spec, bench.ClusterConfig(mode), false, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					if base.Summary.Median > 0 {
						b.ReportMetric(float64(cell.Summary.Median)/float64(base.Summary.Median),
							mode.String()+"-x")
					}
				}
				reportMedian(b, "baseline", base.Summary.Median)
			}
		})
	}
}

// BenchmarkTable1 regenerates Table 1: the ratio of time bubbles among all
// Paxos consensus requests under full CRANE.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range bench.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := bench.RunCell(spec, bench.ClusterConfig(icrane.ModeCrane), false, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cell.ClientCalls), "client-calls")
				b.ReportMetric(float64(cell.Bubbles), "bubbles")
				b.ReportMetric(100*cell.BubbleRatio, "bubble-%")
			}
		})
	}
}

// BenchmarkFigure15 regenerates Figure 15: the effect of the two-line
// soft-barrier hints on Apache and Mongoose under full CRANE.
func BenchmarkFigure15(b *testing.B) {
	for _, spec := range bench.Specs() {
		if !spec.HintsApply {
			continue
		}
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				without, err := bench.RunCell(spec, bench.ClusterConfig(icrane.ModeCrane), false, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				with, err := bench.RunCell(spec, bench.ClusterConfig(icrane.ModeCrane), true, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				reportMedian(b, "wo-hints", without.Summary.Median)
				reportMedian(b, "w-hints", with.Summary.Median)
				if with.Summary.Median > 0 {
					b.ReportMetric(float64(without.Summary.Median)/float64(with.Summary.Median), "hint-speedup-x")
				}
			}
		})
	}
}

// BenchmarkFigure16 regenerates Figure 16: W_timeout sensitivity
// (1/10/100/1000/10000 µs) for each server under full CRANE.
func BenchmarkFigure16(b *testing.B) {
	for _, spec := range bench.Specs() {
		spec := spec
		for _, wt := range bench.Wtimeouts {
			wt := wt
			b.Run(fmt.Sprintf("%s/Wtimeout=%v", spec.Name, wt), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := bench.ClusterConfig(icrane.ModeCrane)
					cfg.Wtimeout = wt
					cell, err := bench.RunCell(spec, cfg, false, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					reportMedian(b, "median", cell.Summary.Median)
					b.ReportMetric(float64(cell.Bubbles), "bubbles")
				}
			})
		}
	}
}

// BenchmarkFigure17 regenerates Figure 17: N_clock sensitivity
// (100/1000/10000) for each server under full CRANE.
func BenchmarkFigure17(b *testing.B) {
	for _, spec := range bench.Specs() {
		spec := spec
		for _, nc := range bench.Nclocks {
			nc := nc
			b.Run(fmt.Sprintf("%s/Nclock=%d", spec.Name, nc), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := bench.ClusterConfig(icrane.ModeCrane)
					cfg.Nclock = nc
					cell, err := bench.RunCell(spec, cfg, false, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					reportMedian(b, "median", cell.Summary.Median)
					b.ReportMetric(float64(cell.Bubbles), "bubbles")
				}
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: per-server checkpoint/restore cost
// for the process image and the filesystem patch.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(float64(row.Cp.Microseconds()), row.App+"-Cp-µs")
			b.ReportMetric(float64(row.Cfs.Microseconds()), row.App+"-Cfs-µs")
			b.ReportMetric(float64(row.Rp.Microseconds()), row.App+"-Rp-µs")
			b.ReportMetric(float64(row.Rfs.Microseconds()), row.App+"-Rfs-µs")
		}
	}
}

// BenchmarkConsistencyPlanI regenerates §7.2 plan I: repeated PUT/GET
// races under full CRANE must never diverge across replicas.
func BenchmarkConsistencyPlanI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Consistency(icrane.ModeCrane, 5, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Divergent > 0 {
			b.Fatalf("plan I diverged in %d/%d runs", res.Divergent, res.Runs)
		}
		b.ReportMetric(float64(res.OK), "GET-200s")
		b.ReportMetric(float64(res.NotFound), "GET-404s")
		b.ReportMetric(0, "divergent")
	}
}

// BenchmarkConsistencyPlanII regenerates §7.2 plan II: with time bubbling
// disabled the divergence rate is reported (the paper observed divergence;
// it is probabilistic per run).
func BenchmarkConsistencyPlanII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Consistency(icrane.ModeCraneNoBubble, 5, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Divergent), "divergent")
		b.ReportMetric(float64(res.Runs), "runs")
	}
}

// BenchmarkElection regenerates §7.6's failover measurement: time from
// primary failure to a serving new primary, plus the 3-step election
// phase itself.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Election(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DetectAndElect.Milliseconds()), "failover-ms")
		b.ReportMetric(res.ElectionPhase, "election-ms")
	}
}

// BenchmarkAblationRex quantifies §8's Rex comparison: bytes a Rex-style
// primary would ship (recorded thread interleavings) vs the socket-input
// bytes CRANE actually ships through consensus, per request.
func BenchmarkAblationRex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationRex(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ScheduleBytesPerR, "rex-B/req")
		b.ReportMetric(res.InputBytesPerR, "crane-B/req")
		b.ReportMetric(res.Ratio, "ship-ratio-x")
	}
}

// BenchmarkAblationPerRequest compares per-burst time bubbling (CRANE)
// against an effectively per-request admission consensus (tiny W_timeout,
// the dOS-style alternative §1 argues against).
func BenchmarkAblationPerRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		perBurst, perRequest, err := bench.AblationPerRequest(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportMedian(b, "per-burst", perBurst.Summary.Median)
		reportMedian(b, "per-request", perRequest.Summary.Median)
		b.ReportMetric(float64(perBurst.Bubbles), "bubbles-burst")
		b.ReportMetric(float64(perRequest.Bubbles), "bubbles-perreq")
	}
}
