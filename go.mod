module crane

go 1.22
