// Package crane is the public API of this reproduction of "Paxos Made
// Transparent" (Cui, Gu, Liu, Chen, Yang — SOSP 2015): CRANE, a state
// machine replication system that transparently replicates multithreaded
// server programs by reaching Paxos consensus on the socket API, making
// execution deterministic with the Parrot DMT scheduler, and making
// request admission times deterministic with time bubbling.
//
// A downstream user writes a server against the papi thread/socket
// surface (re-exported here), packages it as a Program, and deploys it
// replicated:
//
//	prog := papi.Program{Name: "kv", Ports: []int{9000}, New: newKV}
//	cluster, err := crane.StartCluster(crane.Config{
//		Mode:     crane.ModeCrane,
//		Replicas: 3,
//	}, prog)
//
// See examples/quickstart for a complete runnable deployment, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure in the paper's evaluation.
package crane

import (
	icrane "crane/internal/crane"
	"crane/internal/papi"
)

// Mode selects the execution configuration (the bars of the paper's
// Figure 14 plus the §7.2 "plan II" diagnostic mode).
type Mode = icrane.Mode

// Execution modes.
const (
	// ModeNondet runs the program un-replicated with ordinary
	// nondeterministic threading: the paper's baseline.
	ModeNondet = icrane.ModeNondet
	// ModeParrotOnly runs the DMT scheduler without replication.
	ModeParrotOnly = icrane.ModeParrotOnly
	// ModePaxosOnly replicates socket inputs without execution
	// determinism.
	ModePaxosOnly = icrane.ModePaxosOnly
	// ModeCraneNoBubble disables time bubbling (replicas may diverge).
	ModeCraneNoBubble = icrane.ModeCraneNoBubble
	// ModeCrane is the full system.
	ModeCrane = icrane.ModeCrane
)

// Config configures a cluster deployment.
type Config = icrane.Config

// Cluster is a running replicated deployment.
type Cluster = icrane.Cluster

// Replica is one CRANE instance.
type Replica = icrane.Replica

// StartCluster deploys a program under the configured mode.
func StartCluster(cfg Config, prog papi.Program) (*Cluster, error) {
	return icrane.StartCluster(cfg, prog)
}

// Program describes a deployable server program (re-exported from papi).
type Program = papi.Program

// Instance is a replica-local program instantiation.
type Instance = papi.Instance

// T is a server thread's handle to the runtime.
type T = papi.T
