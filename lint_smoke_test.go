// Tier-1 smoke test for the cranevet suite: the repository must stay
// clean under its own analyzers. A new raw `go`, sync primitive, time
// read, or dropped durability error anywhere in the tree fails `go test
// ./...` the same way it fails the dedicated CI step, so the papi
// discipline cannot regress between lint runs.
package crane_test

import (
	"testing"

	"crane/internal/lint"
)

func TestCranevetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is not short")
	}
	pkgs, err := lint.Load(".", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := lint.RunAnalyzers(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("cranevet found %d violation(s); fix them or annotate with //crane:<analyzer>-ok <reason>", len(diags))
	}
}
