// Tier-1 smoke test for the cranevet suite: the repository must stay
// clean under its own analyzers. A new raw `go`, sync primitive, time
// read, dropped durability error, laundered nondeterministic value
// (detflow), or atomic/plain access mix (atomicmix) anywhere in the tree
// fails `go test ./...` the same way it fails the dedicated CI step, so
// the papi discipline cannot regress between lint runs.
package crane_test

import (
	"testing"

	"crane/internal/lint"
)

func TestCranevetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is not short")
	}
	// The interprocedural analyzers are the teeth of this smoke test;
	// guard against the suite silently losing them.
	names := map[string]bool{}
	for _, a := range lint.Analyzers() {
		names[a.Name] = true
	}
	for _, required := range []string{"nondet", "detflow", "atomicmix"} {
		if !names[required] {
			t.Fatalf("analyzer suite lost %q", required)
		}
	}
	pkgs, err := lint.Load(".", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags := lint.RunAnalyzers(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("cranevet found %d violation(s); fix them or annotate with //crane:<analyzer>-ok <reason>", len(diags))
	}
}
