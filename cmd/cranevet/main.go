// Command cranevet runs CRANE's determinism-and-invariant lint suite over
// Go package patterns, the machine-checked substitute for the LD_PRELOAD
// coverage guarantee of the original system (see internal/lint and
// DESIGN.md's "Static analysis" section):
//
//	go run ./cmd/cranevet ./...
//	go build -o cranevet ./cmd/cranevet && ./cranevet ./internal/apps/...
//	./cranevet -format=sarif ./... > cranevet.sarif
//
// Findings print in go-vet format (file:line:col: analyzer: message) by
// default; -format=json and -format=sarif emit machine-readable output
// (SARIF 2.1.0 suits code-scanning upload). Every format lists findings
// in the same deterministic (file, line, column, analyzer) order. A
// non-zero exit status marks the build dirty. Deliberate escapes are
// annotated in source with "//crane:<analyzer>-ok <reason>".
//
// The tool is built only on the standard library's go/ast and go/types
// (no golang.org/x/tools dependency): packages are type-checked from
// source against gc export data produced by `go list -export`.
package main

import (
	"flag"
	"fmt"
	"os"

	"crane/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cranevet [-list] [-format=text|json|sarif] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the CRANE determinism/invariant analyzers over the packages\n")
		fmt.Fprintf(os.Stderr, "matched by the given go-list patterns (default ./...).\n")
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cranevet:", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	switch *format {
	case "text":
		err = lint.WriteText(os.Stdout, diags)
	case "json":
		err = lint.WriteJSON(os.Stdout, diags)
	case "sarif":
		err = lint.WriteSARIF(os.Stdout, analyzers, diags)
	default:
		fmt.Fprintf(os.Stderr, "cranevet: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cranevet:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cranevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
