// Command crane-bench regenerates the paper's evaluation (§7): every
// figure and table, printed in the same shape the paper reports.
//
//	crane-bench                    # run everything at small scale
//	crane-bench -full              # approach the paper's request counts
//	crane-bench -only fig14,table1 # select experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crane/internal/bench"
	"crane/internal/crane"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's 1K-request runs)")
	only := flag.String("only", "", "comma-separated subset: fig14,table1,fig15,fig16,fig17,table2,consistency,election,ablation,observability")
	runs := flag.Int("consistency-runs", 10, "runs per consistency plan (paper: 100)")
	obsOut := flag.String("obs-out", "BENCH_observability.json", "where the observability cell writes its report")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		defer func() {
			runtime.GC() // flush final allocation stats into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Printf("wrote %s (inspect with: go tool pprof -alloc_space %s)\n", *memProfile, *memProfile)
		}()
	}

	scale := bench.SmallScale
	if *full {
		scale = bench.FullScale
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	out := os.Stdout
	start := time.Now()

	if sel("fig14") {
		fmt.Fprintln(out, "== Figure 14: performance normalized to un-replicated nondeterministic execution ==")
		if _, err := bench.Figure14(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("table1") {
		fmt.Fprintln(out, "== Table 1: ratio of time bubbles in all Paxos consensus requests ==")
		if _, err := bench.Table1(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig15") {
		fmt.Fprintln(out, "== Figure 15: effect of soft-barrier performance hints ==")
		if _, err := bench.Figure15(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig16") {
		fmt.Fprintln(out, "== Figure 16: W_timeout sensitivity ==")
		if _, err := bench.Figure16(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig17") {
		fmt.Fprintln(out, "== Figure 17: N_clock sensitivity ==")
		if _, err := bench.Figure17(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("table2") {
		fmt.Fprintln(out, "== Table 2: checkpoint and restore costs ==")
		if _, err := bench.Table2(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("consistency") {
		fmt.Fprintln(out, "== §7.2: consistency of network outputs ==")
		if _, err := bench.Consistency(crane.ModeCrane, *runs, out); err != nil {
			fail(err)
		}
		if _, err := bench.Consistency(crane.ModeCraneNoBubble, *runs, out); err != nil {
			fail(err)
		}
	}
	if sel("election") {
		fmt.Fprintln(out, "== §7.6: leader election ==")
		if _, err := bench.Election(out); err != nil {
			fail(err)
		}
	}
	if sel("ablation") {
		fmt.Fprintln(out, "== Ablation: per-burst vs per-request time consensus ==")
		if _, _, err := bench.AblationPerRequest(scale, out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out, "== Ablation: Rex-style schedule shipping vs CRANE input consensus ==")
		if _, err := bench.AblationRex(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("observability") {
		fmt.Fprintln(out, "== Observability: per-stage request lifecycle and instrumentation overhead ==")
		rep, err := bench.Observability(scale, out)
		if err != nil {
			fail(err)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*obsOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", *obsOut)
	}
	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Second))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "crane-bench:", err)
	os.Exit(1)
}
