// Command crane-bench regenerates the paper's evaluation (§7): every
// figure and table, printed in the same shape the paper reports.
//
//	crane-bench                    # run everything at small scale
//	crane-bench -full              # approach the paper's request counts
//	crane-bench -only fig14,table1 # select experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crane/internal/bench"
	"crane/internal/crane"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's 1K-request runs)")
	only := flag.String("only", "", "comma-separated subset: fig14,table1,fig15,fig16,fig17,table2,consistency,election,ablation,observability,lanes,speculation,sharding")
	runs := flag.Int("consistency-runs", 10, "runs per consistency plan (paper: 100)")
	obsOut := flag.String("obs-out", "BENCH_observability.json", "where the observability cell writes its report")
	lanes := flag.Int("lanes", 1, "execution lanes for DMT-mode cells (programs without a papi.ConflictMap still run single-lane)")
	lanesOut := flag.String("lanes-out", "BENCH_lanes.json", "where the lanes cell writes its report")
	specOut := flag.String("speculation-out", "BENCH_speculation.json", "where the speculation cell writes its report")
	shardOut := flag.String("sharding-out", "BENCH_sharding.json", "where the sharding cell writes its report")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		defer func() {
			runtime.GC() // flush final allocation stats into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Printf("wrote %s (inspect with: go tool pprof -alloc_space %s)\n", *memProfile, *memProfile)
		}()
	}

	bench.DeployLanes = *lanes
	scale := bench.SmallScale
	if *full {
		scale = bench.FullScale
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	out := os.Stdout
	start := time.Now()

	if sel("fig14") {
		fmt.Fprintln(out, "== Figure 14: performance normalized to un-replicated nondeterministic execution ==")
		if _, err := bench.Figure14(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("table1") {
		fmt.Fprintln(out, "== Table 1: ratio of time bubbles in all Paxos consensus requests ==")
		if _, err := bench.Table1(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig15") {
		fmt.Fprintln(out, "== Figure 15: effect of soft-barrier performance hints ==")
		if _, err := bench.Figure15(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig16") {
		fmt.Fprintln(out, "== Figure 16: W_timeout sensitivity ==")
		if _, err := bench.Figure16(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("fig17") {
		fmt.Fprintln(out, "== Figure 17: N_clock sensitivity ==")
		if _, err := bench.Figure17(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("table2") {
		fmt.Fprintln(out, "== Table 2: checkpoint and restore costs ==")
		if _, err := bench.Table2(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("consistency") {
		fmt.Fprintln(out, "== §7.2: consistency of network outputs ==")
		if _, err := bench.Consistency(crane.ModeCrane, *runs, out); err != nil {
			fail(err)
		}
		if _, err := bench.Consistency(crane.ModeCraneNoBubble, *runs, out); err != nil {
			fail(err)
		}
	}
	if sel("election") {
		fmt.Fprintln(out, "== §7.6: leader election ==")
		if _, err := bench.Election(out); err != nil {
			fail(err)
		}
	}
	if sel("ablation") {
		fmt.Fprintln(out, "== Ablation: per-burst vs per-request time consensus ==")
		if _, _, err := bench.AblationPerRequest(scale, out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out, "== Ablation: Rex-style schedule shipping vs CRANE input consensus ==")
		if _, err := bench.AblationRex(scale, out); err != nil {
			fail(err)
		}
	}
	if sel("observability") {
		fmt.Fprintln(out, "== Observability: per-stage request lifecycle and instrumentation overhead ==")
		rep, err := bench.Observability(scale, out)
		if err != nil {
			fail(err)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*obsOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", *obsOut)
	}
	if sel("lanes") {
		fmt.Fprintln(out, "== Parallel execution lanes: crane-x vs lane count (ISSUE 6) ==")
		rows, err := bench.LanesSweep(scale, bench.LaneCounts, out)
		if err != nil {
			fail(err)
		}
		report := struct {
			Description string           `json:"description"`
			Date        string           `json:"date"`
			Scale       string           `json:"scale"`
			Rows        []bench.LanesRow `json:"rows"`
		}{
			Description: "crane-x (full-CRANE latency normalized to un-replicated nondeterministic " +
				"execution) vs execution-lane count, per conflict-declaring server at 8+ workers " +
				"and 8 concurrent connections. Lanes=1 is the pre-lane single-token scheduler " +
				"bit for bit (the before column). Caveats for reading the numbers: this host " +
				"exposes a single CPU core, so 3 replicas re-executing every request put a hard " +
				"~3x floor on crane-x that no scheduler change can beat — lanes remove " +
				"token-rotation and admission serialization, which is why they pull burst " +
				"latency down from ~10x toward that floor but cannot go below it. MySQL at 8 " +
				"lanes regresses: sysbench's per-table locks are cross-lane, and a cross-lane " +
				"acquire waits for every other lane's bubble-paced merge stamp, a cost that " +
				"grows with the lane count (keep lanes <= the number of independent key ranges).",
			Date:  time.Now().Format("2006-01-02"),
			Scale: fmt.Sprintf("requests=%d concurrency>=8 prepare-rows=%d", scale.Requests, scale.PrepareRows),
			Rows:  rows,
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*lanesOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", *lanesOut)
	}
	if sel("speculation") {
		fmt.Fprintln(out, "== Speculative execution: admit-to-exec latency vs commit wait (ISSUE 7) ==")
		cells, err := bench.SpeculationSweep(scale, out)
		if err != nil {
			fail(err)
		}
		report := struct {
			Description string           `json:"description"`
			Date        string           `json:"date"`
			Scale       string           `json:"scale"`
			Cells       []bench.SpecCell `json:"cells"`
		}{
			Description: "Admit-to-exec latency (proxy admission of a socket call to its DMT-turn " +
				"consumption by the server) with speculative execution off and on, with and " +
				"without synchronous WAL appends. The cluster's consensus hub is slowed to " +
				"~800us one-way so a commit round costs ~2ms: with speculation off the server " +
				"cannot touch an admitted call until that round completes, so admit-to-exec " +
				"p50 IS the commit latency; with speculation on the proposing replica's DMT " +
				"consumes the call on its next scheduler turn while the Accept round is still " +
				"in flight, and the commit usually confirms what already ran (spec_hits). " +
				"WAL fsync stretches the commit round — exactly the window speculation hides — " +
				"so the speedup grows in the sync column. Client-visible effects are buffered " +
				"until the window confirms, so end-to-end client medians stay commit-bound; " +
				"the win is server-side pipelining (the next request's work overlaps the " +
				"previous one's commit wait).",
			Date:  time.Now().Format("2006-01-02"),
			Scale: fmt.Sprintf("requests=%d serial", scale.Requests),
			Cells: cells,
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*specOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", *specOut)
	}
	if sel("sharding") {
		fmt.Fprintln(out, "== Multi-group consensus: throughput vs group count (ISSUE 10) ==")
		cells, err := bench.ShardingSweep(scale, out)
		if err != nil {
			fail(err)
		}
		report := struct {
			Description string            `json:"description"`
			Date        string            `json:"date"`
			Scale       string            `json:"scale"`
			Cells       []bench.ShardCell `json:"cells"`
		}{
			Description: "Consensus throughput (committed entries/sec) with the proposal load " +
				"sharded across 1, 2, and 4 independent 3-node Paxos groups over one " +
				"GroupMux-shared endpoint per replica — the sharded cluster's transport " +
				"shape. The hub injects ~250us one-way latency and each group's Accept " +
				"pipeline is narrowed to 2 in-flight batches of 8 entries, so a single " +
				"group tops out near inflight*batch/RTT entries/sec and is RTT-bound, " +
				"not CPU-bound: every added group contributes an independent pipeline " +
				"window, and throughput scales near-linearly in the group count " +
				"(speedup_vs_1 is the acceptance number; the issue asks >= 2.5x at 4 " +
				"groups). Total work is held constant across cells.",
			Date:  time.Now().Format("2006-01-02"),
			Scale: fmt.Sprintf("entries=%d total, split evenly across groups", 256*scale.Requests),
			Cells: cells,
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*shardOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "wrote %s\n", *shardOut)
	}
	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Second))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "crane-bench:", err)
	os.Exit(1)
}
