// Command crane-demo deploys one of the five evaluated servers under a
// chosen execution mode and drives its §7 workload once, printing latency
// statistics and bubble accounting — a one-shot interactive tour of the
// system.
//
//	crane-demo -app apache -mode crane
//	crane-demo -app mysql -mode paxos-only -requests 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crane/internal/bench"
	"crane/internal/crane"
)

func main() {
	app := flag.String("app", "apache", "server: apache, mongoose, clamav, mediatomb, mysql")
	mode := flag.String("mode", "crane", "mode: nondet, parrot-only, paxos-only, crane-nobubble, crane")
	requests := flag.Int("requests", 16, "total workload requests")
	conc := flag.Int("concurrency", 4, "concurrent clients (keep <= server workers)")
	flag.Parse()

	var spec *bench.AppSpec
	for _, s := range bench.Specs() {
		if strings.EqualFold(s.Name, *app) || strings.EqualFold(s.Name, strings.TrimSuffix(*app, "d")) {
			s := s
			spec = &s
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
	var m crane.Mode
	switch *mode {
	case "nondet":
		m = crane.ModeNondet
	case "parrot-only":
		m = crane.ModeParrotOnly
	case "paxos-only":
		m = crane.ModePaxosOnly
	case "crane-nobubble":
		m = crane.ModeCraneNoBubble
	case "crane":
		m = crane.ModeCrane
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	scale := bench.Scale{Requests: *requests, Concurrency: *conc, PrepareRows: 30}
	fmt.Printf("deploying %s under %s (3 replicas unless un-replicated)...\n", spec.Name, m)
	start := time.Now()
	cell, metrics, err := bench.RunCellWithMetrics(*spec, bench.ClusterConfig(m), false, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload: %d requests, %d errors in %v\n",
		cell.Summary.Requests, cell.Summary.Errors, time.Since(start).Round(time.Millisecond))
	fmt.Printf("latency: median=%v p90=%v mean=%v throughput=%.1f req/s\n",
		cell.Summary.Median.Round(time.Microsecond), cell.Summary.P90.Round(time.Microsecond),
		cell.Summary.Mean.Round(time.Microsecond), cell.Summary.Throughput())
	if cell.ClientCalls > 0 {
		fmt.Printf("consensus: %d client socket calls, %d time bubbles (ratio %.2f%%)\n",
			cell.ClientCalls, cell.Bubbles, 100*cell.BubbleRatio)
	}
	for _, line := range metrics {
		fmt.Println(" ", line)
	}
}
