// Command crane-demo deploys one of the five evaluated servers under a
// chosen execution mode and drives its §7 workload once, printing latency
// statistics and bubble accounting — a one-shot interactive tour of the
// system.
//
//	crane-demo -app apache -mode crane
//	crane-demo -app mysql -mode paxos-only -requests 50
//	crane-demo -app apache -metrics 127.0.0.1:9100 -hold 5m
//
// With -metrics, each replica serves /metrics (Prometheus text),
// /healthz, /trace (lifecycle spans as JSONL), and /debug/pprof on the
// base port plus its replica id; -hold keeps the cluster alive after the
// workload so the endpoints can be scraped at leisure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crane/internal/bench"
	"crane/internal/crane"
)

func main() {
	app := flag.String("app", "apache", "server: apache, mongoose, clamav, mediatomb, mysql")
	mode := flag.String("mode", "crane", "mode: nondet, parrot-only, paxos-only, crane-nobubble, crane")
	requests := flag.Int("requests", 16, "total workload requests")
	conc := flag.Int("concurrency", 4, "concurrent clients (keep <= server workers)")
	groups := flag.Int("groups", 1, "independent Paxos groups to shard the socket-call log across (1 = classic single log)")
	metricsAddr := flag.String("metrics", "", "scrape endpoint base address (replica i serves on port+i; empty disables)")
	hold := flag.Duration("hold", 0, "keep the cluster alive this long after the workload (for curling /metrics)")
	flag.Parse()

	var spec *bench.AppSpec
	for _, s := range bench.Specs() {
		if strings.EqualFold(s.Name, *app) || strings.EqualFold(s.Name, strings.TrimSuffix(*app, "d")) {
			s := s
			spec = &s
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
	var m crane.Mode
	switch *mode {
	case "nondet":
		m = crane.ModeNondet
	case "parrot-only":
		m = crane.ModeParrotOnly
	case "paxos-only":
		m = crane.ModePaxosOnly
	case "crane-nobubble":
		m = crane.ModeCraneNoBubble
	case "crane":
		m = crane.ModeCrane
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	scale := bench.Scale{Requests: *requests, Concurrency: *conc, PrepareRows: 30}
	cfg := bench.ClusterConfig(m)
	cfg.Groups = *groups
	if *metricsAddr != "" {
		cfg.MetricsAddr = *metricsAddr
		cfg.TraceCapacity = 1 << 16
	}
	fmt.Printf("deploying %s under %s (3 replicas unless un-replicated)...\n", spec.Name, m)
	cluster, err := crane.StartCluster(cfg, spec.Program(false))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cluster.Stop()
	if *metricsAddr != "" {
		for i := 0; i < cluster.Replicas(); i++ {
			if addr := cluster.Replica(i).ObsAddr(); addr != "" {
				fmt.Printf("replica %d observability: http://%s/metrics (also /healthz /trace /debug/pprof)\n", i, addr)
			}
		}
	}
	start := time.Now()
	if spec.Prepare != nil {
		if err := spec.Prepare(cluster.Dial, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sum := spec.Workload(cluster.Dial, scale)
	fmt.Printf("workload: %d requests, %d errors in %v\n",
		sum.Requests, sum.Errors, time.Since(start).Round(time.Millisecond))
	fmt.Printf("latency: median=%v p90=%v mean=%v throughput=%.1f req/s\n",
		sum.Median.Round(time.Microsecond), sum.P90.Round(time.Microsecond),
		sum.Mean.Round(time.Microsecond), sum.Throughput())
	st := cluster.SeqStats()
	if st.ClientCalls > 0 {
		fmt.Printf("consensus: %d client socket calls, %d time bubbles (ratio %.2f%%)\n",
			st.ClientCalls, st.Bubbles, 100*st.BubbleRatio())
	}
	for _, line := range cluster.ClusterMetrics() {
		fmt.Println(" ", line.String())
	}
	if *hold > 0 {
		fmt.Printf("holding the cluster for %v (ctrl-c to stop early)...\n", *hold)
		time.Sleep(*hold)
	}
}
