// Command crane-consistency reproduces the §7.2 experiments standalone:
// plan I (full CRANE) and plan II (time bubbling disabled) of the Apache
// PUT/GET micro-benchmark, reporting per-run GET outcomes and the
// cross-replica divergence rate.
//
//	crane-consistency -runs 100   # the paper's run count
package main

import (
	"flag"
	"fmt"
	"os"

	"crane/internal/bench"
	"crane/internal/crane"
)

func main() {
	runs := flag.Int("runs", 20, "runs per plan (paper: 100)")
	flag.Parse()

	fmt.Printf("plan I: full CRANE, %d runs of concurrent PUT+GET on a.php\n", *runs)
	p1, err := bench.Consistency(crane.ModeCrane, *runs, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("plan II: time bubbling disabled, %d runs\n", *runs)
	p2, err := bench.Consistency(crane.ModeCraneNoBubble, *runs, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("plan I : %d/%d runs divergent (paper: 0)\n", p1.Divergent, p1.Runs)
	fmt.Printf("plan II: %d/%d runs divergent (paper: logs differed)\n", p2.Divergent, p2.Runs)
	if p1.Divergent > 0 {
		fmt.Println("UNEXPECTED: plan I diverged")
		os.Exit(1)
	}
}
