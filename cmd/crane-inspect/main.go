// crane-inspect localizes the first divergence between two replicas'
// flight-recorder journals. It loads each journal from a file or an HTTP
// /journal endpoint, binary-searches the chained hashes to the first
// divergent entry, and prints a side-by-side report with a window of
// surrounding events:
//
//	crane-inspect replica0.jsonl replica2.jsonl
//	crane-inspect http://127.0.0.1:9100/journal http://127.0.0.1:9102/journal
//
// Exit status: 0 when the journals agree on every comparable prefix, 1 on
// a detected divergence, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"crane/internal/obs/flight"
)

func main() {
	window := flag.Int("window", 5, "entries of context around the divergence")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP fetch timeout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crane-inspect [flags] <journal-a> <journal-b>\n")
		fmt.Fprintf(os.Stderr, "  each argument is a JSONL file or an http(s) /journal URL\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := load(flag.Arg(0), *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crane-inspect: %v\n", err)
		os.Exit(2)
	}
	b, err := load(flag.Arg(1), *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crane-inspect: %v\n", err)
		os.Exit(2)
	}
	if a.Replica == "" {
		a.Replica = flag.Arg(0)
	}
	if b.Replica == "" {
		b.Replica = flag.Arg(1)
	}
	d := flight.FirstDivergence(a, b)
	flight.Report(os.Stdout, a, b, d, *window)
	if d != nil {
		os.Exit(1)
	}
}

// load reads a journal dump from a file path or an http(s) URL.
func load(src string, timeout time.Duration) (*flight.Dump, error) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: status %d", src, resp.StatusCode)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	d, err := flight.ParseJournal(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return d, nil
}
